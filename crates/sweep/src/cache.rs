//! Shared artifact cache: build each application image once per sweep.
//!
//! A grid point needs two artifacts: the built application (program +
//! initialized shared memory + verifier) keyed by `(app, scale,
//! nthreads)`, and — under the explicit/conditional switch models — the
//! grouped program produced by the load-grouping pass. Without the cache,
//! an N-point grid performs N codegen and N grouping passes; with it,
//! each distinct key builds once and every other point clones an `Arc`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mtsim_apps::{build_app, AppKind, BuiltApp, Scale};
use mtsim_asm::Program;

type Key = (AppKind, Scale, usize);

/// Thread-safe cache of built applications and grouped programs.
#[derive(Default)]
pub struct ArtifactCache {
    built: Mutex<HashMap<Key, Arc<BuiltApp>>>,
    grouped: Mutex<HashMap<Key, Arc<Program>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// The built application for `(app, scale, nthreads)`, constructing it
    /// on first use. The boolean is true on a cache hit.
    pub fn built(&self, app: AppKind, scale: Scale, nthreads: usize) -> (Arc<BuiltApp>, bool) {
        let key = (app, scale, nthreads);
        if let Some(hit) = self.built.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        // Build outside the lock: app construction (codegen + input image)
        // is the expensive part, and a concurrent duplicate build is
        // harmless because construction is deterministic — whichever copy
        // loses the insert race is simply dropped.
        let fresh = Arc::new(build_app(app, scale, nthreads));
        let mut map = self.built.lock().unwrap();
        let entry = map.entry(key).or_insert(fresh);
        self.misses.fetch_add(1, Ordering::Relaxed);
        (Arc::clone(entry), false)
    }

    /// The grouped (explicit-switch) program for `(app, scale, nthreads)`,
    /// deriving it from the built application on first use. The boolean is
    /// true on a cache hit.
    pub fn grouped(&self, app: AppKind, scale: Scale, nthreads: usize) -> (Arc<Program>, bool) {
        let key = (app, scale, nthreads);
        if let Some(hit) = self.grouped.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        let (base, _) = self.built(app, scale, nthreads);
        let fresh = Arc::new(base.grouped().0);
        let mut map = self.grouped.lock().unwrap();
        let entry = map.entry(key).or_insert(fresh);
        self.misses.fetch_add(1, Ordering::Relaxed);
        (Arc::clone(entry), false)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. builds performed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = ArtifactCache::new();
        let (a, hit_a) = cache.built(AppKind::Sieve, Scale::Tiny, 2);
        let (b, hit_b) = cache.built(AppKind::Sieve, Scale::Tiny, 2);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_thread_counts_are_distinct_entries() {
        let cache = ArtifactCache::new();
        let (_, h1) = cache.built(AppKind::Sieve, Scale::Tiny, 1);
        let (_, h2) = cache.built(AppKind::Sieve, Scale::Tiny, 2);
        assert!(!h1 && !h2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn grouped_program_matches_a_fresh_grouping() {
        let cache = ArtifactCache::new();
        let (grouped, hit) = cache.grouped(AppKind::Sieve, Scale::Tiny, 2);
        assert!(!hit);
        let fresh = build_app(AppKind::Sieve, Scale::Tiny, 2).grouped().0;
        assert_eq!(*grouped, fresh);
        let (_, hit2) = cache.grouped(AppKind::Sieve, Scale::Tiny, 2);
        assert!(hit2);
    }
}
