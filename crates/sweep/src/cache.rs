//! Shared artifact cache: build each application image once per cache
//! lifetime.
//!
//! A grid point needs two artifacts: the built application (program +
//! initialized shared memory + verifier) keyed by `(app, scale,
//! nthreads)` — the program's *shape*, i.e. everything codegen depends
//! on — and, under the explicit/conditional switch models, the grouped
//! program produced by the load-grouping pass. Two guarantees hold at
//! any worker count:
//!
//! * **Each key builds exactly once.** Every key maps to a `OnceLock`
//!   slot; concurrent first lookups race to initialize it, the losers
//!   block until the winner finishes, and nobody builds a duplicate
//!   that gets thrown away. That also makes the hit/miss counters
//!   deterministic: misses ≡ distinct keys built, hits ≡ everything
//!   else.
//! * **Grouping is deduplicated by program content.** Some applications
//!   emit the same program at every thread count (only their input
//!   image differs), so grouped programs are keyed by a content hash of
//!   the built program rather than the full `(app, scale, nthreads)`
//!   key — those apps pay for one grouping pass per sweep, not one per
//!   thread-count axis value.
//!
//! The cache's lifetime is the caller's choice: `run_sweep` creates a
//! private one per sweep by default, while a long-running service
//! ([`SweepOpts::cache`](crate::SweepOpts)) shares one across requests
//! so programs compile once per *server* lifetime. For that second use
//! the cache supports bounded retention: every lookup stamps its entry
//! with a logical clock, and [`ArtifactCache::evict_to`] drops the
//! least-recently-used entries down to a cap — called between sweeps,
//! never during one, so in-flight `Arc`s stay valid and sweep-internal
//! counters stay deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mtsim_apps::{build_app, AppKind, BuiltApp, Scale};
use mtsim_asm::Program;

use crate::checkpoint::fnv1a64;

type Key = (AppKind, Scale, usize);

/// One cached slot plus the logical time of its most recent lookup.
struct Entry<T> {
    slot: Arc<OnceLock<T>>,
    stamp: u64,
}

impl<T> Entry<T> {
    fn new(stamp: u64) -> Entry<T> {
        Entry { slot: Arc::default(), stamp }
    }
}

/// Thread-safe cache of built applications and grouped programs.
#[derive(Default)]
pub struct ArtifactCache {
    built: Mutex<HashMap<Key, Entry<Arc<BuiltApp>>>>,
    /// Grouped programs keyed by the *content hash* of the source
    /// program, so shape-invariant programs group once per sweep.
    grouped: Mutex<HashMap<u64, Entry<Arc<Program>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Logical clock for LRU stamps; bumped on every lookup.
    clock: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// The built application for `(app, scale, nthreads)`, constructing
    /// it on first use. The boolean is true on a cache hit (this call
    /// did not perform the build — it may still have *waited* for a
    /// concurrent builder).
    pub fn built(&self, app: AppKind, scale: Scale, nthreads: usize) -> (Arc<BuiltApp>, bool) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut map = self.built.lock().unwrap();
            let entry = map.entry((app, scale, nthreads)).or_insert_with(|| Entry::new(stamp));
            entry.stamp = stamp;
            Arc::clone(&entry.slot)
        };
        // Build outside the map lock: codegen + input-image construction
        // is the expensive part and must not serialize unrelated keys.
        let mut built_here = false;
        let value = slot.get_or_init(|| {
            built_here = true;
            Arc::new(build_app(app, scale, nthreads))
        });
        self.count(built_here);
        (Arc::clone(value), !built_here)
    }

    /// The grouped (explicit-switch) program for `(app, scale,
    /// nthreads)`, deriving it from the built application on first use.
    /// The boolean is true on a cache hit.
    pub fn grouped(&self, app: AppKind, scale: Scale, nthreads: usize) -> (Arc<Program>, bool) {
        let (base, _) = self.built(app, scale, nthreads);
        let content = fnv1a64(base.program.listing().as_bytes());
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut map = self.grouped.lock().unwrap();
            let entry = map.entry(content).or_insert_with(|| Entry::new(stamp));
            entry.stamp = stamp;
            Arc::clone(&entry.slot)
        };
        let mut built_here = false;
        let value = slot.get_or_init(|| {
            built_here = true;
            Arc::new(base.grouped().0)
        });
        self.count(built_here);
        (Arc::clone(value), !built_here)
    }

    fn count(&self, built_here: bool) {
        if built_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cache hits so far. Deterministic for a fixed job set: total
    /// lookups minus [`ArtifactCache::misses`].
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses — i.e. builds actually performed — so far.
    /// Deterministic for a fixed job set: one per distinct artifact.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by [`ArtifactCache::evict_to`] so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently resident (built apps + grouped programs).
    pub fn entries(&self) -> usize {
        self.built.lock().unwrap().len() + self.grouped.lock().unwrap().len()
    }

    /// Evicts least-recently-used entries until at most `max_entries`
    /// remain across both maps; returns how many were dropped. Meant to
    /// run *between* sweeps (a service calls it after each job): entries
    /// a running sweep already looked up stay alive through their
    /// `Arc`s regardless, but evicting mid-sweep would skew that sweep's
    /// deterministic hit/miss accounting.
    pub fn evict_to(&self, max_entries: usize) -> u64 {
        let mut built = self.built.lock().unwrap();
        let mut grouped = self.grouped.lock().unwrap();
        let mut dropped = 0u64;
        while built.len() + grouped.len() > max_entries {
            let oldest_built =
                built.iter().min_by_key(|(_, e)| e.stamp).map(|(k, e)| (*k, e.stamp));
            let oldest_grouped =
                grouped.iter().min_by_key(|(_, e)| e.stamp).map(|(k, e)| (*k, e.stamp));
            match (oldest_built, oldest_grouped) {
                (Some((k, sb)), Some((_, sg))) if sb <= sg => {
                    built.remove(&k);
                }
                (_, Some((k, _))) => {
                    grouped.remove(&k);
                }
                (Some((k, _)), None) => {
                    built.remove(&k);
                }
                (None, None) => break,
            }
            dropped += 1;
        }
        self.evictions.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("entries", &self.entries())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = ArtifactCache::new();
        let (a, hit_a) = cache.built(AppKind::Sieve, Scale::Tiny, 2);
        let (b, hit_b) = cache.built(AppKind::Sieve, Scale::Tiny, 2);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_thread_counts_are_distinct_entries() {
        let cache = ArtifactCache::new();
        let (_, h1) = cache.built(AppKind::Sieve, Scale::Tiny, 1);
        let (_, h2) = cache.built(AppKind::Sieve, Scale::Tiny, 2);
        assert!(!h1 && !h2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn grouped_program_matches_a_fresh_grouping() {
        let cache = ArtifactCache::new();
        let (grouped, hit) = cache.grouped(AppKind::Sieve, Scale::Tiny, 2);
        assert!(!hit);
        let fresh = build_app(AppKind::Sieve, Scale::Tiny, 2).grouped().0;
        assert_eq!(*grouped, fresh);
        let (_, hit2) = cache.grouped(AppKind::Sieve, Scale::Tiny, 2);
        assert!(hit2);
    }

    #[test]
    fn grouping_dedupes_shape_invariant_programs() {
        // Blkmat emits the same program at every thread count (only its
        // input image differs), so two thread counts share one grouping.
        let cache = ArtifactCache::new();
        let (g1, _) = cache.grouped(AppKind::Blkmat, Scale::Tiny, 1);
        let (g2, hit) = cache.grouped(AppKind::Blkmat, Scale::Tiny, 2);
        assert!(Arc::ptr_eq(&g1, &g2), "identical programs must share a grouping");
        assert!(hit);
        // Sieve's program depends on the thread count, so it must not.
        let (s1, _) = cache.grouped(AppKind::Sieve, Scale::Tiny, 1);
        let (s2, _) = cache.grouped(AppKind::Sieve, Scale::Tiny, 2);
        assert!(!Arc::ptr_eq(&s1, &s2));
    }

    #[test]
    fn concurrent_first_lookups_build_exactly_once() {
        let cache = ArtifactCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.built(AppKind::Sor, Scale::Tiny, 4));
            }
        });
        assert_eq!(cache.misses(), 1, "duplicate concurrent build");
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn eviction_drops_lru_first_and_a_reinserted_key_rebuilds() {
        let cache = ArtifactCache::new();
        cache.built(AppKind::Sieve, Scale::Tiny, 1);
        cache.built(AppKind::Sieve, Scale::Tiny, 2);
        // Touch the first entry again: it is now the most recent.
        cache.built(AppKind::Sieve, Scale::Tiny, 1);
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.evict_to(1), 1);
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.evictions(), 1);
        // The survivor is the recently-touched key; looking it up hits.
        let (_, hit) = cache.built(AppKind::Sieve, Scale::Tiny, 1);
        assert!(hit, "the most-recently-used entry must survive eviction");
        // The evicted key rebuilds (a miss), proving it really left.
        let (_, hit) = cache.built(AppKind::Sieve, Scale::Tiny, 2);
        assert!(!hit, "an evicted entry must rebuild on next lookup");
        assert_eq!(cache.evict_to(0), 2);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.evictions(), 3);
    }

    #[test]
    fn eviction_spans_both_maps_by_recency() {
        let cache = ArtifactCache::new();
        cache.grouped(AppKind::Sieve, Scale::Tiny, 1); // built + grouped entries
        cache.built(AppKind::Sor, Scale::Tiny, 1);
        assert_eq!(cache.entries(), 3);
        // Keep only the newest entry: the two older ones go, whichever
        // map they live in.
        assert_eq!(cache.evict_to(1), 2);
        let (_, hit) = cache.built(AppKind::Sor, Scale::Tiny, 1);
        assert!(hit, "newest entry must survive");
    }
}
