//! # mtsim-sweep
//!
//! Parallel experiment orchestration for `mtsim` grid sweeps.
//!
//! Every paper table and figure is a grid over (application, switch
//! model, P, T, latency, …), and every grid point is an independent,
//! deterministic, single-threaded simulation (DESIGN.md §9) — an
//! embarrassingly parallel workload. This crate turns a declarative
//! [`SweepSpec`] into jobs, runs them on a `std`-only work-stealing
//! thread pool with panic isolation, shares built application artifacts
//! through an [`ArtifactCache`], and aggregates per-job
//! [`mtsim_core::RunStats`] into a result table whose JSON/CSV renderings
//! are byte-identical at any worker count.
//!
//! On top of that sits a crash-safe execution layer (DESIGN.md §18):
//! completed jobs stream to an fsync'd, checksummed `.jsonl` checkpoint
//! the moment they finish; [`resume_sweep`] re-derives the remaining
//! grid from a checkpoint and produces output byte-identical to an
//! uninterrupted run; per-job wall-clock watchdogs cancel runaway
//! simulations; and transiently failing jobs (panics, timeouts) are
//! retried with backoff and quarantined — not fatal — when they keep
//! failing.
//!
//! ```
//! use mtsim_sweep::{run_sweep, SweepOpts, SweepSpec};
//!
//! let mut spec = SweepSpec::default();
//! spec.set("apps", "sieve").unwrap();
//! spec.set("t", "1,2").unwrap();
//! spec.set("scale", "tiny").unwrap();
//! let out = run_sweep(&spec, &SweepOpts { workers: Some(2), ..SweepOpts::default() }).unwrap();
//! assert_eq!(out.ok_count(), 2);
//! ```

mod cache;
pub mod checkpoint;
pub mod json;
mod pool;
mod results;
mod spec;
mod stream;

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mtsim_core::{Machine, MachineScratch, NoopRecorder, ObsRecorder};

pub use cache::ArtifactCache;
pub use checkpoint::{load_checkpoint, spec_hash, Checkpoint, SweepError};
pub use pool::{default_workers, run_jobs, run_jobs_partial, Watchdog};
pub use results::{JobError, JobOutcome, SweepOutcome};
pub use spec::{JobSpec, SweepSpec, DEFAULT_MAX_CYCLES};
pub use stream::StreamWriter;

/// Execution options for a sweep.
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Worker threads; `None` means [`default_workers`].
    pub workers: Option<usize>,
    /// Emit a live `[done/total]` progress line on stderr.
    pub progress: bool,
    /// Stream each completed job to this checkpoint file (fsync'd,
    /// checksummed JSON lines; see DESIGN.md §18). `None` disables
    /// streaming; results then exist only in the returned outcome.
    pub stream: Option<String>,
    /// Wall-clock budget per job *attempt*. When set, a watchdog thread
    /// cancels attempts that exceed it; the job fails with kind
    /// `"timeout"` and is retried like a panic. `None` disables the
    /// watchdog (the deterministic simulated-cycle budget
    /// [`SweepSpec::max_cycles`] always applies regardless).
    pub job_timeout: Option<Duration>,
    /// Extra attempts for jobs that fail *transiently* (panic or
    /// wall-clock timeout). Typed simulator and verifier errors are
    /// deterministic and never retried. Jobs still failing after
    /// `1 + retries` attempts are quarantined.
    pub retries: u32,
    /// Orchestration-level fault injection for the chaos harness.
    pub chaos: Option<ChaosPlan>,
    /// Shared artifact cache. `None` (the default) gives the sweep a
    /// private cache that dies with it; a long-running service passes a
    /// process-lifetime cache here so programs compile once per server
    /// lifetime. The outcome's hit/miss telemetry counts this sweep's
    /// lookups only (deltas), so it stays deterministic either way.
    pub cache: Option<Arc<ArtifactCache>>,
    /// Cooperative cancellation. When the token flips to `true`, workers
    /// stop claiming jobs, in-flight simulations abort (the token is
    /// polled from the engine step loop), nothing more is appended to
    /// the checkpoint stream — so a later resume re-runs the cancelled
    /// jobs — and the sweep returns [`SweepError::Aborted`] unless every
    /// job had already completed.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Live progress for external observers: set to the number of
    /// durably completed jobs (checkpointed prior jobs count immediately
    /// on resume) and incremented as each job finishes. Orthogonal to
    /// [`SweepOpts::progress`], which prints to stderr.
    pub completed: Option<Arc<AtomicUsize>>,
}

impl Default for SweepOpts {
    fn default() -> SweepOpts {
        SweepOpts {
            workers: None,
            progress: false,
            stream: None,
            job_timeout: None,
            retries: 2,
            chaos: None,
            cache: None,
            cancel: None,
            completed: None,
        }
    }
}

/// Seeded orchestration-failure injection (testing hook for the chaos
/// harness in `mtsim-check`): worker panics at job boundaries and
/// simulated kills after a fixed number of completions. Production runs
/// leave this `None`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Job ids that panic on their *first* attempt (the retry layer then
    /// gets to prove a clean second attempt heals the sweep).
    pub panic_once: Vec<usize>,
    /// Abort the sweep once this many jobs have completed in this run —
    /// a kill at a job boundary. The checkpoint keeps everything that
    /// finished; the run returns [`SweepError::Aborted`].
    pub kill_after: Option<usize>,
}

/// Expands `spec` and runs every grid point.
///
/// # Errors
///
/// [`SweepError::Config`] when the spec fails [`SweepSpec::validate`];
/// [`SweepError::Io`]/[`SweepError::Aborted`] only for streaming sweeps
/// whose checkpoint cannot be written. Failures of individual grid
/// points are reported per job in the outcome, never as a sweep-level
/// error.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOpts) -> Result<SweepOutcome, SweepError> {
    spec.validate().map_err(SweepError::Config)?;
    let jobs = spec.expand();
    let writer = match &opts.stream {
        None => None,
        Some(path) => Some(StreamWriter::create(path, spec_hash(spec), jobs.len())?),
    };
    execute(jobs, Vec::new(), writer, opts)
}

/// Resumes an interrupted streaming sweep from its checkpoint.
///
/// The checkpoint is validated line by line; completed jobs are taken
/// from it verbatim and only the remaining grid points run. The final
/// result table is byte-identical to an uninterrupted run of the same
/// spec. A torn final line (crash mid-append) is discarded with a
/// warning and that job simply re-runs; any other inconsistency is a
/// typed error.
///
/// # Errors
///
/// [`SweepError::Config`] for an invalid spec, [`SweepError::Corrupt`]
/// for a damaged checkpoint, [`SweepError::SpecMismatch`] when the
/// checkpoint belongs to a different spec, [`SweepError::Io`] when the
/// file cannot be read or reopened, and [`SweepError::Aborted`] when
/// the resumed run itself fails to keep streaming.
pub fn resume_sweep(
    spec: &SweepSpec,
    opts: &SweepOpts,
    path: &str,
) -> Result<SweepOutcome, SweepError> {
    spec.validate().map_err(SweepError::Config)?;
    let jobs = spec.expand();
    let hash = spec_hash(spec);
    let ckpt = load_checkpoint(path)?;
    if ckpt.spec_hash != hash {
        return Err(SweepError::SpecMismatch { expected: hash, found: ckpt.spec_hash });
    }
    if ckpt.total != jobs.len() {
        return Err(SweepError::Corrupt {
            path: path.to_string(),
            line: 1,
            detail: format!(
                "header says {} grid points but the spec expands to {}",
                ckpt.total,
                jobs.len()
            ),
        });
    }
    if ckpt.torn_tail {
        eprintln!(
            "warning: {path}: discarded a torn final record (crash mid-append); \
             that job will re-run"
        );
    }
    let writer = StreamWriter::reopen(path, &ckpt)?;
    let mut prior: Vec<JobOutcome> = ckpt
        .records
        .into_values()
        .map(|r| JobOutcome {
            spec: jobs[r.id],
            result: r.result,
            attr: r.attr,
            cache_hit: false,
            attempts: r.attempts,
            quarantined: r.quarantined,
        })
        .collect();
    prior.sort_by_key(|o| o.spec.id);
    let done: std::collections::HashSet<usize> = prior.iter().map(|o| o.spec.id).collect();
    let remaining: Vec<JobSpec> = jobs.into_iter().filter(|j| !done.contains(&j.id)).collect();
    execute(remaining, prior, Some(writer), opts)
}

/// Runs an explicit job list — the escape hatch for grids a cartesian
/// [`SweepSpec`] cannot express (per-app processor counts, mixed
/// baselines). Ids are the caller's; the outcome is sorted by id, so the
/// submission order never shows in the results.
///
/// Streaming and chaos kills need a [`SweepSpec`] to hash, so this entry
/// point ignores [`SweepOpts::stream`] and rejects kill plans; use
/// [`run_sweep`] for crash-safe runs.
pub fn run_job_specs(jobs: Vec<JobSpec>, opts: &SweepOpts) -> SweepOutcome {
    debug_assert!(opts.stream.is_none(), "run_job_specs does not stream; use run_sweep");
    debug_assert!(
        opts.chaos.as_ref().is_none_or(|c| c.kill_after.is_none()),
        "run_job_specs cannot simulate kills; use run_sweep"
    );
    let opts = SweepOpts { stream: None, ..opts.clone() };
    execute(jobs, Vec::new(), None, &opts)
        .expect("a non-streaming sweep cannot fail at the sweep level")
}

/// Shared executor: runs `remaining`, appends each completion to the
/// stream (when present), merges with `prior` outcomes from a
/// checkpoint, and sorts by id.
fn execute(
    remaining: Vec<JobSpec>,
    prior: Vec<JobOutcome>,
    writer: Option<StreamWriter>,
    opts: &SweepOpts,
) -> Result<SweepOutcome, SweepError> {
    let workers = opts.workers.unwrap_or_else(default_workers);
    let total = prior.len() + remaining.len();
    let cache = match &opts.cache {
        Some(shared) => Arc::clone(shared),
        None => Arc::new(ArtifactCache::new()),
    };
    // Snapshot the counters so a shared cache reports per-sweep deltas.
    let (hits0, misses0) = (cache.hits(), cache.misses());
    let reuses = AtomicU64::new(0);
    let done = AtomicUsize::new(prior.len());
    if let Some(c) = &opts.completed {
        c.store(prior.len(), Ordering::Relaxed);
    }
    let started = Instant::now();

    let watchdog = opts.job_timeout.map(|_| Watchdog::new());
    let writer = Mutex::new(writer);
    let first_error: Mutex<Option<SweepError>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let completed_this_run = AtomicUsize::new(0);
    // Jobs that made it past the persistence point this run (appended to
    // the stream when one exists). A cancelled sweep is Ok only if every
    // job got here — a cancelled-but-unpersisted final job must abort.
    let durable = AtomicUsize::new(0);
    let kill_after = opts.chaos.as_ref().and_then(|c| c.kill_after);
    let cancelled = || opts.cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed));

    let ran = pool::run_jobs_partial(remaining, workers, &stop, |_, spec| {
        let outcome = run_one_with_retries(spec, &cache, opts, watchdog.as_ref(), &reuses);
        if cancelled() {
            // A cancelled sweep stops persisting: whatever this job
            // produced (typically a cancelled simulation) stays off the
            // checkpoint, so a later resume re-runs it cleanly.
            stop.store(true, Ordering::Relaxed);
            return outcome;
        }
        if let Some(w) = writer.lock().unwrap().as_mut() {
            if let Err(e) = w.append(&outcome) {
                stop.store(true, Ordering::Relaxed);
                first_error.lock().unwrap().get_or_insert(e);
            }
        }
        if let Some(c) = &opts.completed {
            c.fetch_add(1, Ordering::Relaxed);
        }
        durable.fetch_add(1, Ordering::Relaxed);
        let n = completed_this_run.fetch_add(1, Ordering::Relaxed) + 1;
        if kill_after.is_some_and(|k| n >= k) {
            stop.store(true, Ordering::Relaxed);
        }
        if opts.progress {
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprint!(
                "\r[{n}/{total}] {} {} p={} t={}      ",
                spec.app, spec.model, spec.procs, spec.threads_per_proc
            );
        }
        outcome
    });
    if opts.progress && total > 0 {
        eprintln!();
    }

    let completed = prior.len() + ran.len();
    if let Some(e) = first_error.lock().unwrap().take() {
        return Err(SweepError::Aborted { reason: e.to_string(), completed });
    }
    if cancelled() && prior.len() + durable.load(Ordering::Relaxed) < total {
        let completed = prior.len() + durable.load(Ordering::Relaxed);
        return Err(SweepError::Aborted { reason: "cancelled".into(), completed });
    }
    // A kill that fires after the last job is a no-op: everything is
    // durable, so the sweep simply completed.
    if kill_after.is_some() && completed < total {
        return Err(SweepError::Aborted {
            reason: "chaos: injected kill at a job boundary".into(),
            completed,
        });
    }

    let mut outcomes = prior;
    outcomes.extend(ran.into_iter().map(|(_, spec, result)| match result {
        Ok(outcome) => outcome,
        // A panic that escaped the retry layer itself (bookkeeping bug,
        // not a job failure) still degrades to one failed row.
        Err(message) => JobOutcome::once(spec, Err(JobError::Panic { message })),
    }));
    outcomes.sort_by_key(|o| o.spec.id);

    Ok(SweepOutcome {
        jobs: outcomes,
        workers,
        wall: started.elapsed(),
        cache_hits: cache.hits() - hits0,
        cache_misses: cache.misses() - misses0,
        machine_reuses: reuses.load(Ordering::Relaxed),
    })
}

/// Runs one grid point, retrying transient failures (panics and
/// wall-clock timeouts) with exponential backoff and quarantining the
/// job once the budget is spent. Deterministic failures (typed simulator
/// errors, verify mismatches) return immediately — rerunning them would
/// produce the same result.
fn run_one_with_retries(
    spec: &JobSpec,
    cache: &ArtifactCache,
    opts: &SweepOpts,
    watchdog: Option<&Watchdog>,
    reuses: &AtomicU64,
) -> JobOutcome {
    let attempts_allowed = 1 + opts.retries;
    let mut attempt = 0u32;
    let sweep_cancelled = || opts.cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed));
    loop {
        attempt += 1;
        let armed = match (watchdog, opts.job_timeout) {
            (Some(dog), Some(budget)) => Some(dog.arm(budget)),
            _ => None,
        };
        // The engine polls one token per run: the per-attempt watchdog
        // deadline when armed (sweep-level cancel then takes effect at
        // the next attempt boundary, bounded by the job timeout), else
        // the sweep-level cancel token directly.
        let cancel = armed.as_ref().map(|a| a.token()).or_else(|| opts.cancel.clone());
        let run = catch_unwind(AssertUnwindSafe(|| {
            if attempt == 1 {
                if let Some(chaos) = &opts.chaos {
                    if chaos.panic_once.contains(&spec.id) {
                        panic!("chaos: injected panic at job {}", spec.id);
                    }
                }
            }
            run_one(spec, cache, cancel, reuses)
        }));
        drop(armed);
        let mut outcome = match run {
            Ok(outcome) => outcome,
            Err(payload) => JobOutcome::once(
                *spec,
                Err(JobError::Panic { message: pool::panic_message(payload.as_ref()) }),
            ),
        };
        outcome.attempts = attempt;
        let transient =
            matches!(&outcome.result, Err(e) if e.kind() == "panic" || e.kind() == "timeout");
        if !transient {
            return outcome;
        }
        // A cancelled sweep never retries: the "timeout" here is the
        // cancel token aborting the engine, not a transient failure, and
        // the executor discards the outcome anyway.
        if sweep_cancelled() {
            return outcome;
        }
        if attempt >= attempts_allowed {
            outcome.quarantined = true;
            return outcome;
        }
        // Exponential backoff, capped: transient failures are usually
        // resource pressure, and hammering makes that worse.
        std::thread::sleep(Duration::from_millis(10u64 << attempt.min(5)));
    }
}

thread_local! {
    /// Per-worker parked machine state. Successive same-shape jobs on one
    /// worker reuse the program clone and thread vector instead of
    /// reallocating them; see [`MachineScratch`]. The pool spawns fresh
    /// scoped threads per sweep, so this holds nothing across sweeps.
    static MACHINE_SCRATCH: RefCell<MachineScratch> = RefCell::new(MachineScratch::new());
}

/// Scratch-reuse key for a grid point: everything that determines the
/// program *content* plus the address of the artifact actually run.
/// Artifacts are deterministic functions of `(app, scale, nthreads,
/// grouped)`, so even if an address gets recycled across evictions the
/// colliding program bytes are identical and reuse stays sound.
fn scratch_key(spec: &JobSpec, program: &mtsim_asm::Program, grouped: bool) -> u64 {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(spec.app.name().as_bytes());
    buf.push(b'/');
    buf.extend_from_slice(spec.scale.name().as_bytes());
    buf.extend_from_slice(&(spec.nthreads() as u64).to_le_bytes());
    buf.extend_from_slice(&(program as *const _ as usize as u64).to_le_bytes());
    buf.push(grouped as u8);
    let key = checkpoint::fnv1a64(&buf);
    // Key 0 means "never reuse" to the engine; remap the one-in-2^64 hash.
    if key == 0 {
        1
    } else {
        key
    }
}

/// Runs a single grid point against the shared artifact cache.
fn run_one(
    spec: &JobSpec,
    cache: &ArtifactCache,
    cancel: Option<Arc<AtomicBool>>,
    reuses: &AtomicU64,
) -> JobOutcome {
    let (app, mut cache_hit) = cache.built(spec.app, spec.scale, spec.nthreads());
    let cfg = spec.config();
    if cfg.total_threads() != app.nthreads {
        let message = format!(
            "app was built for {} threads, config asks for {}",
            app.nthreads,
            cfg.total_threads()
        );
        return JobOutcome {
            spec: *spec,
            result: Err(JobError::Sim { kind: "config", message }),
            attr: None,
            cache_hit,
            attempts: 1,
            quarantined: false,
        };
    }

    // Attribution runs attach a real recorder; a tiny ring suffices since
    // the sweep only keeps the attribution table, not the event trace.
    let mut rec =
        spec.attr.then(|| ObsRecorder::with_capacity(cfg.processors, cfg.total_threads(), 1));

    // Mirror `mtsim_apps::run_app`'s model-aware program selection, but
    // through the cache so the grouping pass also runs once per key.
    let grouped_program;
    let (program, grouped) = if cfg.model.uses_explicit_switch() {
        let (grouped, hit) = cache.grouped(spec.app, spec.scale, spec.nthreads());
        cache_hit = cache_hit && hit;
        grouped_program = grouped;
        (&*grouped_program, true)
    } else {
        (&app.program, false)
    };
    let key = scratch_key(spec, program, grouped);

    let run = MACHINE_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let (machine, reused) =
            Machine::try_new_reusing(cfg, program, app.shared.clone(), key, scratch)?;
        if reused {
            reuses.fetch_add(1, Ordering::Relaxed);
        }
        let machine = match cancel {
            Some(token) => machine.with_cancel_token(token),
            None => machine,
        };
        match rec.as_mut() {
            Some(r) => machine.run_reusing(r, key, scratch),
            None => machine.run_reusing(&mut NoopRecorder, key, scratch),
        }
    });

    let result = match run {
        Err(err) => Err(JobError::from_sim(&err)),
        Ok(lean) => match app.verify(&lean.shared) {
            Err(message) => Err(JobError::Verify { message }),
            Ok(()) => Ok(lean.result.stats()),
        },
    };
    let attr = match &result {
        Ok(_) => rec.map(|r| r.attr.summary()),
        Err(_) => None,
    };
    JobOutcome { spec: *spec, result, attr, cache_hit, attempts: 1, quarantined: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_apps::{AppKind, Scale};
    use mtsim_core::SwitchModel;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            apps: vec![AppKind::Sieve],
            models: vec![SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch],
            procs: vec![2],
            threads: vec![1, 2],
            scale: Scale::Tiny,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn tiny_sweep_runs_every_point_ok() {
        let out = run_sweep(&tiny_spec(), &SweepOpts::default()).unwrap();
        assert_eq!(out.jobs.len(), 4);
        assert_eq!(out.ok_count(), 4);
        // Two (model-independent) builds, one grouping derivation; the
        // rest of the lookups hit.
        assert!(out.cache_hits + out.cache_misses >= 4);
        for job in &out.jobs {
            let stats = job.result.as_ref().unwrap();
            assert!(stats.cycles > 0);
            assert!(stats.instructions > 0);
        }
    }

    #[test]
    fn invalid_spec_is_a_sweep_level_error() {
        let spec = SweepSpec { procs: vec![], ..SweepSpec::default() };
        match run_sweep(&spec, &SweepOpts::default()) {
            Err(SweepError::Config(_)) => {}
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn outcome_is_sorted_by_id_regardless_of_submission() {
        let mut jobs = tiny_spec().expand();
        jobs.reverse();
        let out = run_job_specs(jobs, &SweepOpts { workers: Some(3), ..SweepOpts::default() });
        let ids: Vec<usize> = out.jobs.iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn injected_panic_heals_on_retry_and_quarantines_without_budget() {
        let spec = SweepSpec { scale: Scale::Tiny, ..tiny_spec() };
        let chaos = ChaosPlan { panic_once: vec![1], kill_after: None };

        let healed = run_sweep(
            &spec,
            &SweepOpts { retries: 2, chaos: Some(chaos.clone()), ..SweepOpts::default() },
        )
        .unwrap();
        assert_eq!(healed.ok_count(), 4);
        assert_eq!(healed.quarantined_count(), 0);
        assert_eq!(healed.jobs[1].attempts, 2, "the panicked job must have retried");
        let clean = run_sweep(&spec, &SweepOpts::default()).unwrap();
        assert_eq!(clean.results_json(), healed.results_json());

        let starved =
            run_sweep(&spec, &SweepOpts { retries: 0, chaos: Some(chaos), ..SweepOpts::default() })
                .unwrap();
        assert_eq!(starved.quarantined_count(), 1);
        assert_eq!(starved.jobs[1].result.as_ref().unwrap_err().kind(), "panic");
        assert!(starved.results_json().contains("failed_jobs"));
    }

    #[test]
    fn wall_clock_watchdog_times_out_and_quarantines_a_stuck_job() {
        // A zero wall budget is pre-expired: every attempt is cancelled,
        // so the job exhausts its retries and lands in quarantine with
        // kind "timeout" while the sweep itself completes.
        let spec = SweepSpec {
            apps: vec![AppKind::Sor],
            models: vec![SwitchModel::SwitchOnLoad],
            procs: vec![2],
            threads: vec![1],
            scale: Scale::Small,
            ..SweepSpec::default()
        };
        let out = run_sweep(
            &spec,
            &SweepOpts {
                workers: Some(1),
                job_timeout: Some(Duration::ZERO),
                retries: 1,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(out.jobs.len(), 1);
        let job = &out.jobs[0];
        assert_eq!(job.result.as_ref().unwrap_err().kind(), "timeout");
        assert!(job.quarantined);
        assert_eq!(job.attempts, 2);
    }

    #[test]
    fn machine_reuse_kicks_in_and_is_bit_identical_on_one_worker() {
        // Same app/scale/threads at several memory latencies: every job
        // after the first on the single worker reuses the parked machine.
        let spec = SweepSpec {
            apps: vec![AppKind::Sieve],
            models: vec![SwitchModel::SwitchOnLoad],
            procs: vec![2],
            threads: vec![2],
            latencies: vec![1, 4, 16, 64],
            scale: Scale::Tiny,
            ..SweepSpec::default()
        };
        let opts = SweepOpts { workers: Some(1), ..SweepOpts::default() };
        let reused = run_sweep(&spec, &opts).unwrap();
        assert_eq!(reused.ok_count(), 4);
        assert_eq!(reused.machine_reuses, 3, "jobs 2..4 must reuse the parked machine");
        // Reuse must never leak state between grid points: the results
        // match a multi-worker run (mostly fresh machines) byte for byte.
        let spread =
            run_sweep(&spec, &SweepOpts { workers: Some(4), ..SweepOpts::default() }).unwrap();
        assert_eq!(reused.results_json(), spread.results_json());
    }

    #[test]
    fn pre_fired_cancel_aborts_without_retries_and_reports_durable_progress() {
        let cancel = Arc::new(AtomicBool::new(true));
        let completed = Arc::new(AtomicUsize::new(0));
        let opts = SweepOpts {
            workers: Some(1),
            retries: 3,
            cancel: Some(Arc::clone(&cancel)),
            completed: Some(Arc::clone(&completed)),
            ..SweepOpts::default()
        };
        match run_sweep(&tiny_spec(), &opts) {
            Err(SweepError::Aborted { reason, completed: done }) => {
                assert_eq!(reason, "cancelled");
                // A cancelled job is discarded before persistence, so no
                // durable progress is reported for it.
                assert_eq!(done, 0);
            }
            other => panic!("expected Aborted, got {other:?}"),
        }
        assert_eq!(completed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shared_cache_across_sweeps_reports_zero_misses_on_the_second_run() {
        let cache = Arc::new(ArtifactCache::new());
        let opts = SweepOpts { cache: Some(Arc::clone(&cache)), ..SweepOpts::default() };
        let first = run_sweep(&tiny_spec(), &opts).unwrap();
        assert!(first.cache_misses > 0, "first run must build the artifacts");
        let second = run_sweep(&tiny_spec(), &opts).unwrap();
        assert_eq!(second.cache_misses, 0, "a warm shared cache rebuilds nothing");
        assert_eq!(first.results_json(), second.results_json());
    }
}
