//! # mtsim-sweep
//!
//! Parallel experiment orchestration for `mtsim` grid sweeps.
//!
//! Every paper table and figure is a grid over (application, switch
//! model, P, T, latency, …), and every grid point is an independent,
//! deterministic, single-threaded simulation (DESIGN.md §9) — an
//! embarrassingly parallel workload. This crate turns a declarative
//! [`SweepSpec`] into jobs, runs them on a `std`-only work-stealing
//! thread pool with panic isolation, shares built application artifacts
//! through an [`ArtifactCache`], and aggregates per-job
//! [`mtsim_core::RunStats`] into a result table whose JSON/CSV renderings
//! are byte-identical at any worker count.
//!
//! ```
//! use mtsim_sweep::{run_sweep, SweepOpts, SweepSpec};
//!
//! let mut spec = SweepSpec::default();
//! spec.set("apps", "sieve").unwrap();
//! spec.set("t", "1,2").unwrap();
//! spec.set("scale", "tiny").unwrap();
//! let out = run_sweep(&spec, &SweepOpts { workers: Some(2), ..SweepOpts::default() }).unwrap();
//! assert_eq!(out.ok_count(), 2);
//! ```

mod cache;
pub mod json;
mod pool;
mod results;
mod spec;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use mtsim_core::{Machine, ObsRecorder};

pub use cache::ArtifactCache;
pub use pool::{default_workers, run_jobs};
pub use results::{JobError, JobOutcome, SweepOutcome};
pub use spec::{JobSpec, SweepSpec, DEFAULT_MAX_CYCLES};

/// Execution options for a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOpts {
    /// Worker threads; `None` means [`default_workers`].
    pub workers: Option<usize>,
    /// Emit a live `[done/total]` progress line on stderr.
    pub progress: bool,
}

/// Expands `spec` and runs every grid point.
///
/// # Errors
///
/// Returns an error when the spec fails [`SweepSpec::validate`]; failures
/// of individual grid points are reported per job in the outcome, never
/// as a sweep-level error.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOpts) -> Result<SweepOutcome, String> {
    spec.validate()?;
    Ok(run_job_specs(spec.expand(), opts))
}

/// Runs an explicit job list — the escape hatch for grids a cartesian
/// [`SweepSpec`] cannot express (per-app processor counts, mixed
/// baselines). Ids are the caller's; the outcome is sorted by id, so the
/// submission order never shows in the results.
pub fn run_job_specs(jobs: Vec<JobSpec>, opts: &SweepOpts) -> SweepOutcome {
    let workers = opts.workers.unwrap_or_else(default_workers);
    let total = jobs.len();
    let cache = ArtifactCache::new();
    let done = AtomicUsize::new(0);
    let started = Instant::now();

    let ran = pool::run_jobs(jobs, workers, |_, spec| {
        let outcome = run_one(spec, &cache);
        if opts.progress {
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            eprint!(
                "\r[{n}/{total}] {} {} p={} t={}      ",
                spec.app, spec.model, spec.procs, spec.threads_per_proc
            );
        }
        outcome
    });
    if opts.progress && total > 0 {
        eprintln!();
    }

    let mut outcomes: Vec<JobOutcome> = ran
        .into_iter()
        .map(|(spec, result)| match result {
            Ok(outcome) => outcome,
            Err(message) => JobOutcome {
                spec,
                result: Err(JobError::Panic { message }),
                attr: None,
                cache_hit: false,
            },
        })
        .collect();
    outcomes.sort_by_key(|o| o.spec.id);

    SweepOutcome {
        jobs: outcomes,
        workers,
        wall: started.elapsed(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
    }
}

/// Runs a single grid point against the shared artifact cache.
fn run_one(spec: &JobSpec, cache: &ArtifactCache) -> JobOutcome {
    let (app, mut cache_hit) = cache.built(spec.app, spec.scale, spec.nthreads());
    let cfg = spec.config();
    if cfg.total_threads() != app.nthreads {
        let message = format!(
            "app was built for {} threads, config asks for {}",
            app.nthreads,
            cfg.total_threads()
        );
        return JobOutcome {
            spec: *spec,
            result: Err(JobError::Sim { kind: "config", message }),
            attr: None,
            cache_hit,
        };
    }

    // Attribution runs attach a real recorder; a tiny ring suffices since
    // the sweep only keeps the attribution table, not the event trace.
    let mut rec =
        spec.attr.then(|| ObsRecorder::with_capacity(cfg.processors, cfg.total_threads(), 1));

    // Mirror `mtsim_apps::run_app`'s model-aware program selection, but
    // through the cache so the grouping pass also runs once per key.
    let machine = if cfg.model.uses_explicit_switch() {
        let (grouped, hit) = cache.grouped(spec.app, spec.scale, spec.nthreads());
        cache_hit = cache_hit && hit;
        Machine::try_new(cfg, &grouped, app.shared.clone())
    } else {
        Machine::try_new(cfg, &app.program, app.shared.clone())
    };
    let run = match rec.as_mut() {
        Some(r) => machine.and_then(|m| m.run_with(r)),
        None => machine.and_then(Machine::run),
    };

    let result = match run {
        Err(err) => Err(JobError::from_sim(&err)),
        Ok(fin) => match app.verify(&fin.shared) {
            Err(message) => Err(JobError::Verify { message }),
            Ok(()) => Ok(fin.result.stats()),
        },
    };
    let attr = match &result {
        Ok(_) => rec.map(|r| r.attr.summary()),
        Err(_) => None,
    };
    JobOutcome { spec: *spec, result, attr, cache_hit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsim_apps::{AppKind, Scale};
    use mtsim_core::SwitchModel;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            apps: vec![AppKind::Sieve],
            models: vec![SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch],
            procs: vec![2],
            threads: vec![1, 2],
            scale: Scale::Tiny,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn tiny_sweep_runs_every_point_ok() {
        let out = run_sweep(&tiny_spec(), &SweepOpts::default()).unwrap();
        assert_eq!(out.jobs.len(), 4);
        assert_eq!(out.ok_count(), 4);
        // Two (model-independent) builds, one grouping derivation; the
        // rest of the lookups hit.
        assert!(out.cache_hits + out.cache_misses >= 4);
        for job in &out.jobs {
            let stats = job.result.as_ref().unwrap();
            assert!(stats.cycles > 0);
            assert!(stats.instructions > 0);
        }
    }

    #[test]
    fn invalid_spec_is_a_sweep_level_error() {
        let spec = SweepSpec { procs: vec![], ..SweepSpec::default() };
        assert!(run_sweep(&spec, &SweepOpts::default()).is_err());
    }

    #[test]
    fn outcome_is_sorted_by_id_regardless_of_submission() {
        let mut jobs = tiny_spec().expand();
        jobs.reverse();
        let out = run_job_specs(jobs, &SweepOpts { workers: Some(3), ..SweepOpts::default() });
        let ids: Vec<usize> = out.jobs.iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
