//! A `std`-only work-stealing thread pool for sweep jobs.
//!
//! Topology: one shared injector deque seeded with every job, plus one
//! local deque per worker. A worker pops from the front of its own queue,
//! refills from the injector in small batches when dry, and finally
//! steals from the *back* of a peer's queue. Jobs run under
//! `catch_unwind`, so one panicking grid point becomes one failed result
//! instead of a dead worker (or a dead sweep).
//!
//! Each lock guards a single deque and is never held while another is
//! acquired except in the fixed order injector → own queue, so the pool
//! cannot deadlock. Results carry their submission index and are merged
//! back into submission order, which keeps the output independent of
//! scheduling.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// One completed job: submission index, the item, and its result (or
/// caught panic message).
type Finished<I, O> = (usize, I, Result<O, String>);

/// Workers to use when the caller does not say: `MTSIM_JOBS` if set and
/// positive, else the machine's available parallelism, else 1.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("MTSIM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over every item on `workers` threads, returning
/// `(item, result)` pairs in the original submission order. A panic in
/// `f` is caught and surfaced as `Err(panic message)` for that item only.
///
/// `f` receives the item's submission index alongside the item.
pub fn run_jobs<I, O, F>(items: Vec<I>, workers: usize, f: F) -> Vec<(I, Result<O, String>)>
where
    I: Send,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let total = items.len();
    let workers = workers.max(1).min(total.max(1));
    let injector: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let locals: Vec<Mutex<VecDeque<(usize, I)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let f = &f;
    let injector = &injector;
    let locals = &locals;

    let mut collected: Vec<Vec<Finished<I, O>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    while let Some((idx, item)) = next_job(me, injector, locals) {
                        let result = catch_unwind(AssertUnwindSafe(|| f(idx, &item)))
                            .map_err(|payload| panic_message(payload.as_ref()));
                        done.push((idx, item, result));
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked outside a job")).collect()
    });

    let mut out: Vec<Option<(I, Result<O, String>)>> = (0..total).map(|_| None).collect();
    for (idx, item, result) in collected.drain(..).flatten() {
        out[idx] = Some((item, result));
    }
    out.into_iter().map(|slot| slot.expect("pool lost a job")).collect()
}

/// Claim the next job for worker `me`: own queue front, then an injector
/// batch, then a steal from the back of the busiest-looking peer.
fn next_job<I>(
    me: usize,
    injector: &Mutex<VecDeque<(usize, I)>>,
    locals: &[Mutex<VecDeque<(usize, I)>>],
) -> Option<(usize, I)> {
    if let Some(job) = locals[me].lock().unwrap().pop_front() {
        return Some(job);
    }
    {
        let mut inj = injector.lock().unwrap();
        if !inj.is_empty() {
            // Take a small batch: the first job runs now, the rest park in
            // the local queue where idle peers can steal them back.
            let batch = inj.len().div_ceil(locals.len()).clamp(1, 4);
            let first = inj.pop_front();
            let mut own = locals[me].lock().unwrap();
            for _ in 1..batch {
                match inj.pop_front() {
                    Some(job) => own.push_back(job),
                    None => break,
                }
            }
            return first;
        }
    }
    for (peer, queue) in locals.iter().enumerate() {
        if peer == me {
            continue;
        }
        if let Some(job) = queue.lock().unwrap().pop_back() {
            return Some(job);
        }
    }
    None
}

/// Best-effort extraction of a panic payload (`&str` and `String` cover
/// everything `panic!` produces in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_jobs(items, 8, |idx, &n| {
            assert_eq!(idx, n);
            n * 2
        });
        assert_eq!(out.len(), 100);
        for (i, (item, result)) in out.iter().enumerate() {
            assert_eq!(*item, i);
            assert_eq!(*result.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_jobs((0..57).collect::<Vec<usize>>(), 4, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 57);
        assert_eq!(ran.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let out = run_jobs(vec![1, 2, 3, 4], 2, |_, &n| {
            if n == 3 {
                panic!("boom at {n}");
            }
            n
        });
        assert_eq!(out.len(), 4);
        assert!(out[0].1.is_ok() && out[1].1.is_ok() && out[3].1.is_ok());
        assert!(out[2].1.as_ref().unwrap_err().contains("boom at 3"));
    }

    #[test]
    fn zero_items_and_oversized_pools_are_fine() {
        let out: Vec<(usize, Result<usize, String>)> = run_jobs(Vec::new(), 8, |_, &n| n);
        assert!(out.is_empty());
        let out = run_jobs(vec![9], 64, |_, &n| n + 1);
        assert_eq!(out[0].1.as_ref().unwrap(), &10);
    }
}
