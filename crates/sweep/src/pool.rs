//! A `std`-only work-stealing thread pool for sweep jobs.
//!
//! Topology: one shared injector deque seeded with every job, plus one
//! local deque per worker. A worker pops from the front of its own queue,
//! refills from the injector in small batches when dry, and finally
//! steals from the *back* of a peer's queue. Jobs run under
//! `catch_unwind`, so one panicking grid point becomes one failed result
//! instead of a dead worker (or a dead sweep).
//!
//! Each lock guards a single deque and is never held while another is
//! acquired except in the fixed order injector → own queue, so the pool
//! cannot deadlock. Results carry their submission index and are merged
//! back into submission order, which keeps the output independent of
//! scheduling.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed job: submission index, the item, and its result (or
/// caught panic message).
pub type Finished<I, O> = (usize, I, Result<O, String>);

/// Workers to use when the caller does not say: `MTSIM_JOBS` if set and
/// positive, else the machine's available parallelism, else 1.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("MTSIM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over every item on `workers` threads, returning
/// `(item, result)` pairs in the original submission order. A panic in
/// `f` is caught and surfaced as `Err(panic message)` for that item only.
///
/// `f` receives the item's submission index alongside the item.
pub fn run_jobs<I, O, F>(items: Vec<I>, workers: usize, f: F) -> Vec<(I, Result<O, String>)>
where
    I: Send,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let total = items.len();
    let finished = run_jobs_partial(items, workers, &AtomicBool::new(false), f);
    debug_assert_eq!(finished.len(), total);
    let mut out: Vec<Option<(I, Result<O, String>)>> = (0..total).map(|_| None).collect();
    for (idx, item, result) in finished {
        out[idx] = Some((item, result));
    }
    out.into_iter().map(|slot| slot.expect("pool lost a job")).collect()
}

/// Like [`run_jobs`], but workers stop claiming new jobs once `stop` is
/// set — jobs already running finish normally. Returns only the jobs
/// that actually ran, as `(submission index, item, result)` sorted by
/// index. The crash-safe sweep layer uses this for graceful aborts
/// (stream-write failure, injected chaos kills): durable progress is
/// whatever completed, and everything else stays runnable on resume.
pub fn run_jobs_partial<I, O, F>(
    items: Vec<I>,
    workers: usize,
    stop: &AtomicBool,
    f: F,
) -> Vec<Finished<I, O>>
where
    I: Send,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let total = items.len();
    let workers = workers.max(1).min(total.max(1));
    let injector: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let locals: Vec<Mutex<VecDeque<(usize, I)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let f = &f;
    let injector = &injector;
    let locals = &locals;

    let mut collected: Vec<Vec<Finished<I, O>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let Some((idx, item)) = next_job(me, injector, locals) else { break };
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            let _quiet = silence_panics_on_this_thread();
                            f(idx, &item)
                        }))
                        .map_err(|payload| panic_message(payload.as_ref()));
                        done.push((idx, item, result));
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked outside a job")).collect()
    });

    let mut out: Vec<Finished<I, O>> = collected.drain(..).flatten().collect();
    out.sort_by_key(|(idx, _, _)| *idx);
    out
}

/// Claim the next job for worker `me`: own queue front, then an injector
/// batch, then a steal from the back of the busiest-looking peer.
fn next_job<I>(
    me: usize,
    injector: &Mutex<VecDeque<(usize, I)>>,
    locals: &[Mutex<VecDeque<(usize, I)>>],
) -> Option<(usize, I)> {
    if let Some(job) = locals[me].lock().unwrap().pop_front() {
        return Some(job);
    }
    {
        let mut inj = injector.lock().unwrap();
        if !inj.is_empty() {
            // Take a batch: the first job runs now, the rest park in the
            // local queue where idle peers can steal them back. Chunky
            // batches amortize the injector lock across many small jobs
            // (a tiny-scale grid point runs in single-digit milliseconds,
            // so per-claim locking was a measurable tax); stealing from
            // the back of peers keeps the tail balanced anyway.
            let batch = inj.len().div_ceil(locals.len()).clamp(1, 16);
            let first = inj.pop_front();
            let mut own = locals[me].lock().unwrap();
            for _ in 1..batch {
                match inj.pop_front() {
                    Some(job) => own.push_back(job),
                    None => break,
                }
            }
            return first;
        }
    }
    for (peer, queue) in locals.iter().enumerate() {
        if peer == me {
            continue;
        }
        if let Some(job) = queue.lock().unwrap().pop_back() {
            return Some(job);
        }
    }
    None
}

thread_local! {
    static SILENCE_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Suppresses the default panic hook's backtrace spew on this thread
/// until the returned guard drops (including during unwinding). Job
/// panics are caught by the pool and surfaced as structured errors, so
/// the hook's stderr dump is pure noise — doubly so under chaos
/// injection, which panics on purpose dozens of times per run. The
/// forwarding hook is installed once, process-wide, and delegates to the
/// previous hook everywhere the thread-local flag is unset.
pub(crate) fn silence_panics_on_this_thread() -> impl Drop {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
    struct Quiet;
    impl Drop for Quiet {
        fn drop(&mut self) {
            SILENCE_PANICS.with(|s| s.set(false));
        }
    }
    SILENCE_PANICS.with(|s| s.set(true));
    Quiet
}

/// Best-effort extraction of a panic payload (`&str` and `String` cover
/// everything `panic!` produces in practice).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Per-job wall-clock watchdog
// ---------------------------------------------------------------------------

struct WatchdogInner {
    /// Active deadlines: (slot id, deadline, the job's cancel token).
    active: Mutex<Vec<(u64, Instant, Arc<AtomicBool>)>>,
    quit: AtomicBool,
    next_id: AtomicU64,
}

/// A deadline thread that cancels jobs exceeding their wall-clock
/// budget.
///
/// Rust threads cannot be killed, so enforcement is cooperative: each
/// armed job gets an `Arc<AtomicBool>` cancel token that the worker
/// threads through [`mtsim_core::Machine::with_cancel_token`]; the
/// engine polls it once per step and bails out with
/// `SimError::Cancelled`, which the sweep layer reports as a `timeout`
/// and treats as transient (retryable). One watchdog thread serves the
/// whole pool — the scan list never exceeds the worker count.
pub struct Watchdog {
    inner: Arc<WatchdogInner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the deadline thread.
    pub fn new() -> Watchdog {
        let inner = Arc::new(WatchdogInner {
            active: Mutex::new(Vec::new()),
            quit: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
        });
        let scan = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("mtsim-watchdog".into())
            .spawn(move || {
                while !scan.quit.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    for (_, deadline, token) in scan.active.lock().unwrap().iter() {
                        if now >= *deadline {
                            token.store(true, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
            .expect("spawn watchdog thread");
        Watchdog { inner, thread: Some(thread) }
    }

    /// Arms a fresh cancel token with `budget` of wall-clock time. The
    /// token disarms (and stops being scanned) when the guard drops, so
    /// each retry attempt re-arms with a full budget.
    pub fn arm(&self, budget: Duration) -> ArmedToken {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        // A zero budget is already expired: trip synchronously so jobs
        // faster than the scan interval still observe the deadline
        // (deterministic behaviour the tests rely on).
        let token = Arc::new(AtomicBool::new(budget.is_zero()));
        self.inner.active.lock().unwrap().push((id, Instant::now() + budget, Arc::clone(&token)));
        ArmedToken { id, token, inner: Arc::clone(&self.inner) }
    }
}

impl Default for Watchdog {
    fn default() -> Watchdog {
        Watchdog::new()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.inner.quit.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

/// An armed per-job cancel token; disarms on drop.
pub struct ArmedToken {
    id: u64,
    token: Arc<AtomicBool>,
    inner: Arc<WatchdogInner>,
}

impl ArmedToken {
    /// The cancel token to hand to the engine.
    pub fn token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.token)
    }
}

impl Drop for ArmedToken {
    fn drop(&mut self) {
        self.inner.active.lock().unwrap().retain(|(id, _, _)| *id != self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_jobs(items, 8, |idx, &n| {
            assert_eq!(idx, n);
            n * 2
        });
        assert_eq!(out.len(), 100);
        for (i, (item, result)) in out.iter().enumerate() {
            assert_eq!(*item, i);
            assert_eq!(*result.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = run_jobs((0..57).collect::<Vec<usize>>(), 4, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 57);
        assert_eq!(ran.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let out = run_jobs(vec![1, 2, 3, 4], 2, |_, &n| {
            if n == 3 {
                panic!("boom at {n}");
            }
            n
        });
        assert_eq!(out.len(), 4);
        assert!(out[0].1.is_ok() && out[1].1.is_ok() && out[3].1.is_ok());
        assert!(out[2].1.as_ref().unwrap_err().contains("boom at 3"));
    }

    #[test]
    fn stop_flag_halts_claiming_at_a_job_boundary() {
        let stop = AtomicBool::new(false);
        let ran = run_jobs_partial((0..64).collect::<Vec<usize>>(), 1, &stop, |_, &n| {
            if n == 5 {
                stop.store(true, Ordering::Relaxed);
            }
            n
        });
        // Serial worker: exactly jobs 0..=5 ran, in order, nothing lost.
        assert_eq!(ran.len(), 6);
        assert!(ran.iter().enumerate().all(|(i, (idx, _, _))| i == *idx));
    }

    #[test]
    fn watchdog_trips_only_expired_tokens() {
        let dog = Watchdog::new();
        let fast = dog.arm(Duration::from_millis(1));
        let slow = dog.arm(Duration::from_secs(3600));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !fast.token().load(Ordering::Relaxed) {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!slow.token().load(Ordering::Relaxed), "unexpired token tripped");
        // Disarmed tokens leave the scan list.
        drop(fast);
        drop(slow);
        assert!(dog.inner.active.lock().unwrap().is_empty());
    }

    #[test]
    fn zero_items_and_oversized_pools_are_fine() {
        let out: Vec<(usize, Result<usize, String>)> = run_jobs(Vec::new(), 8, |_, &n| n);
        assert!(out.is_empty());
        let out = run_jobs(vec![9], 64, |_, &n| n + 1);
        assert_eq!(out[0].1.as_ref().unwrap(), &10);
    }
}
