//! Property tests for the hand-rolled JSON writer (`mtsim_sweep::json`).
//!
//! The writer's claim is "syntactically valid JSON, deterministic bytes".
//! These tests check the first half mechanically: a naive, strict JSON
//! parser written right here (no external deps, per DESIGN.md §9)
//! re-reads randomly generated documents and must recover the original
//! values exactly. The parser rejects unescaped control characters in
//! strings, so any escaping gap in the writer shows up as a parse error
//! rather than a silently mangled value.

use mtsim_rng::Rng;
use mtsim_sweep::json::JsonBuilder;

// ------------------------------------------------------------ naive parser

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { chars: text.chars().peekable() }
    }

    fn parse_document(text: &str) -> Result<Value, String> {
        let mut p = Parser::new(text);
        let v = p.value()?;
        p.skip_ws();
        match p.chars.next() {
            None => Ok(v),
            Some(c) => Err(format!("trailing garbage starting at '{c}'")),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected '{want}', found {other:?}")),
        }
    }

    fn literal(&mut self, rest: &str, v: Value) -> Result<Value, String> {
        for want in rest.chars() {
            self.expect(want)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.chars.peek().copied() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('n') => self.literal("null", Value::Null),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at start of value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.chars.next();
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.chars.next() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(members)),
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&']') {
            self.chars.next();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(s),
                Some('\\') => match self.chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        s.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                // The strictness that matters: RFC 8259 forbids raw
                // control characters inside strings.
                Some(c) if (c as u32) < 0x20 => {
                    return Err(format!("unescaped control character {:#x}", c as u32));
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.chars.next().ok_or("truncated \\u escape")?;
            v = v * 16 + c.to_digit(16).ok_or(format!("bad hex digit '{c}'"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                text.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number '{text}': {e}"))
    }
}

// -------------------------------------------------------------- generators

/// A character palette weighted toward the hostile cases: quotes,
/// backslashes, every control character, and some multibyte text.
fn random_string(rng: &mut Rng) -> String {
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| match rng.below(8) {
            0 => '"',
            1 => '\\',
            2 => char::from_u32(rng.below(0x20) as u32).unwrap(),
            3 => ['/', '\u{7f}', '\u{2028}', 'é', '日', '🚀'][rng.below(6) as usize],
            _ => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
        })
        .collect()
}

fn random_finite_f64(rng: &mut Rng) -> f64 {
    match rng.below(6) {
        0 => 0.0,
        1 => -0.0,
        2 => rng.range_f64(-1e6, 1e6),
        3 => rng.range_f64(-1.0, 1.0) * 1e300,
        4 => f64::MIN_POSITIVE,
        _ => f64::from_bits(rng.next_u64() & !0x7ff0_0000_0000_0000), // subnormal-ish
    }
}

/// A random document tree; `depth` bounds nesting.
fn random_value(rng: &mut Rng, depth: u32) -> Value {
    let pick = if depth == 0 { rng.below(4) } else { rng.below(6) };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(0.5)),
        2 => Value::Num(random_finite_f64(rng)),
        3 => Value::Str(random_string(rng)),
        4 => Value::Arr((0..rng.below(4)).map(|_| random_value(rng, depth - 1)).collect()),
        _ => Value::Obj(
            (0..rng.below(4)).map(|_| (random_string(rng), random_value(rng, depth - 1))).collect(),
        ),
    }
}

/// Emits a document tree through the writer under test.
fn emit(j: &mut JsonBuilder, v: &Value) {
    match v {
        Value::Null => {
            j.f64(f64::NAN); // the writer's only null spelling
        }
        Value::Bool(b) => {
            j.bool(*b);
        }
        Value::Num(x) => {
            j.f64(*x);
        }
        Value::Str(s) => {
            j.string(s);
        }
        Value::Arr(items) => {
            j.begin_array();
            for item in items {
                emit(j, item);
            }
            j.end();
        }
        Value::Obj(members) => {
            j.begin_object();
            for (k, item) in members {
                j.key(k);
                emit(j, item);
            }
            j.end();
        }
    }
}

/// Equality with float bit-exactness (shortest-roundtrip `Display` must
/// re-parse to the identical bits, including the sign of zero).
fn same(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
        (Value::Arr(x), Value::Arr(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(i, k)| same(i, k))
        }
        (Value::Obj(x), Value::Obj(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|((ka, va), (kb, vb))| ka == kb && same(va, vb))
        }
        _ => a == b,
    }
}

// ------------------------------------------------------------------- tests

#[test]
fn random_strings_roundtrip_exactly() {
    let mut rng = Rng::derive(0xB00, "json-strings");
    for case in 0..500 {
        let s = random_string(&mut rng);
        let mut j = JsonBuilder::new();
        j.string(&s);
        let text = j.finish();
        let parsed = Parser::parse_document(&text)
            .unwrap_or_else(|e| panic!("case {case}: invalid JSON {text:?}: {e}"));
        assert_eq!(parsed, Value::Str(s.clone()), "case {case}: emitted {text:?}");
    }
}

#[test]
fn keys_use_the_same_escaping_as_values() {
    let mut rng = Rng::derive(0xB00, "json-keys");
    for _ in 0..200 {
        let k = random_string(&mut rng);
        let mut j = JsonBuilder::new();
        j.begin_object().key(&k).u64(1).end();
        let text = j.finish();
        match Parser::parse_document(&text) {
            Ok(Value::Obj(members)) => assert_eq!(members[0].0, k, "emitted {text:?}"),
            other => panic!("bad parse of {text:?}: {other:?}"),
        }
    }
}

#[test]
fn nonfinite_floats_become_null_and_finite_floats_roundtrip_bit_exactly() {
    let mut j = JsonBuilder::new();
    j.begin_array().f64(f64::NAN).f64(f64::INFINITY).f64(f64::NEG_INFINITY).end();
    assert_eq!(j.finish(), "[null,null,null]");

    let mut rng = Rng::derive(0xB00, "json-floats");
    for case in 0..500 {
        let x = random_finite_f64(&mut rng);
        let mut j = JsonBuilder::new();
        j.f64(x);
        let text = j.finish();
        match Parser::parse_document(&text) {
            Ok(Value::Num(y)) => assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "case {case}: {x:?} emitted as {text:?} re-parsed as {y:?}"
            ),
            other => panic!("case {case}: {x:?} emitted as {text:?}, parsed {other:?}"),
        }
    }
}

#[test]
fn integers_roundtrip() {
    let mut rng = Rng::derive(0xB00, "json-ints");
    for _ in 0..200 {
        let x = rng.next_u64() >> rng.below(64);
        let mut j = JsonBuilder::new();
        j.u64(x);
        let text = j.finish();
        // u64::MAX exceeds f64's exact-integer range; compare through the
        // same lossy conversion the parser applies.
        assert_eq!(Parser::parse_document(&text), Ok(Value::Num(x as f64)), "emitted {text:?}");
    }
}

#[test]
fn random_nested_documents_roundtrip() {
    let mut rng = Rng::derive(0xB00, "json-docs");
    for case in 0..300 {
        let doc = random_value(&mut rng, 4);
        let mut j = JsonBuilder::new();
        emit(&mut j, &doc);
        let text = j.finish();
        let parsed = Parser::parse_document(&text)
            .unwrap_or_else(|e| panic!("case {case}: invalid JSON {text:?}: {e}"));
        assert!(
            same(&parsed, &doc),
            "case {case}:\n  doc    {doc:?}\n  text   {text:?}\n  parsed {parsed:?}"
        );
    }
}
