//! Golden-file snapshot tests for the paper-table text reports and the
//! `mtsim sweep` JSON/CSV result tables.
//!
//! Every report here is a pure function of the (deterministic)
//! simulations, so the rendered bytes are stable across machines and
//! worker counts. Fixtures live under `tests/golden/`; regenerate after
//! an intentional change with:
//!
//! ```text
//! BLESS=1 cargo test --test golden_reports
//! ```
//!
//! A failing diff means either an engine-semantics change (investigate!)
//! or an intentional report change (re-bless and review the diff).

use mtsim::sweep::{run_sweep, SweepOpts, SweepSpec};
use mtsim_apps::{build_app, profile_app, AppKind, Scale};
use mtsim_bench::tables;
use mtsim_core::{MachineConfig, SwitchModel};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` against the named fixture, or rewrites the fixture
/// when `BLESS=1` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden fixture {name}; generate it with BLESS=1 cargo test --test golden_reports")
    });
    assert!(
        expected == actual,
        "golden mismatch for {name}.\n--- expected ---\n{expected}\n--- actual ---\n{actual}\n\
         If the change is intentional, re-bless with BLESS=1 cargo test --test golden_reports"
    );
}

#[test]
fn table2_tiny_snapshot() {
    check_golden("table2.txt", &tables::table2_text(Scale::Tiny));
}

#[test]
fn table3_tiny_snapshot() {
    check_golden("table3.txt", &tables::table3_text(Scale::Tiny, Some(2)));
}

#[test]
fn table4_tiny_snapshot() {
    check_golden("table4.txt", &tables::table4_text(Scale::Tiny));
}

#[test]
fn table5_tiny_snapshot() {
    check_golden("table5.txt", &tables::table5_text(Scale::Tiny, Some(2)));
}

#[test]
fn table6_tiny_snapshot() {
    check_golden("table6.txt", &tables::table6_text(Scale::Tiny));
}

#[test]
fn table7_tiny_snapshot() {
    check_golden("table7.txt", &tables::table7_text(Scale::Tiny));
}

#[test]
fn table8_tiny_snapshot() {
    check_golden("table8.txt", &tables::table8_text(Scale::Tiny, Some(2)));
}

/// A small deterministic sweep grid, snapshotting both output formats.
/// Worker count must not affect the bytes (submission-order results).
#[test]
fn sweep_json_and_csv_snapshots() {
    let mut spec = SweepSpec::default();
    for (key, value) in [
        ("apps", "sieve,sor"),
        ("models", "switch-on-load,explicit-switch"),
        ("p", "1,2"),
        ("t", "2"),
        ("latency", "200"),
        ("seeds", "1"),
        ("drop", "0"),
    ] {
        spec.set(key, value).unwrap_or_else(|e| panic!("spec {key}: {e}"));
    }
    spec.scale = Scale::Tiny;

    let one =
        run_sweep(&spec, &SweepOpts { workers: Some(1), progress: false, ..SweepOpts::default() })
            .unwrap();
    let four =
        run_sweep(&spec, &SweepOpts { workers: Some(4), progress: false, ..SweepOpts::default() })
            .unwrap();
    assert_eq!(one.results_json(), four.results_json(), "results depend on worker count");

    check_golden("sweep.json", &one.results_json());
    check_golden("sweep.csv", &one.results_csv());
}

/// The text flame table (DESIGN.md §17) on Table 2's smallest
/// configuration: the first paper app at `Tiny` scale, 2 processors × 2
/// threads, switch-on-load. Attribution is a pure function of the
/// deterministic simulation, so the rendered bytes are stable.
#[test]
fn flame_table_tiny_snapshot() {
    let kind = AppKind::ALL[0];
    let app = build_app(kind, Scale::Tiny, 4);
    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 2);
    let (_, rec) = profile_app(&app, cfg, 64).expect("flame-table run");
    check_golden("flame_table.txt", &rec.flame_table());
}
