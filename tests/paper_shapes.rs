//! Shape checks for the paper's headline claims, at test-friendly scale.
//!
//! These assert the *qualitative* results of the paper — who wins, by
//! roughly what factor, where the plateaus are — not the absolute 1992
//! numbers (see EXPERIMENTS.md for the quantitative comparison).

use mtsim::apps::{app_builder, baseline_cycles, build_app, efficiency, run_app, AppKind, Scale};
use mtsim::core::{MachineConfig, SwitchModel};

fn cfgm(model: SwitchModel, p: usize, t: usize) -> MachineConfig {
    let mut c = MachineConfig::new(model, p, t);
    c.max_cycles = 500_000_000;
    c
}

/// §5: "This explicit-switch model ... is shown to eliminate from 50% to
/// 80% of the context switches needed by the switch-on-load model."
#[test]
fn grouping_eliminates_half_to_most_switches() {
    for kind in [AppKind::Sor, AppKind::Water, AppKind::Mp3d, AppKind::Ugray] {
        let app = build_app(kind, Scale::Tiny, 4);
        let sol = run_app(&app, cfgm(SwitchModel::SwitchOnLoad, 2, 2)).unwrap();
        let exp = run_app(&app, cfgm(SwitchModel::ExplicitSwitch, 2, 2)).unwrap();
        let ratio = exp.switches_taken as f64 / sol.switches_taken as f64;
        assert!(ratio < 0.65, "{kind}: explicit-switch kept {:.0}% of switches", ratio * 100.0);
    }
}

/// §5: grouping must never make an application slower at equal T (the
/// switch-instruction penalty is overwhelmed by the grouping benefit).
#[test]
fn explicit_switch_dominates_switch_on_load() {
    for kind in AppKind::ALL {
        let app = build_app(kind, Scale::Tiny, 8);
        let sol = run_app(&app, cfgm(SwitchModel::SwitchOnLoad, 2, 4)).unwrap();
        let exp = run_app(&app, cfgm(SwitchModel::ExplicitSwitch, 2, 4)).unwrap();
        assert!(
            (exp.cycles as f64) < 1.05 * sol.cycles as f64,
            "{kind}: explicit {} vs switch-on-load {}",
            exp.cycles,
            sol.cycles
        );
    }
}

/// §4: short-run-length applications (sor) plateau under switch-on-load
/// while grouping unlocks them (the Figure 4 story).
#[test]
fn sor_breaks_its_switch_on_load_plateau() {
    let build = app_builder(AppKind::Sor, Scale::Small);
    let baseline = baseline_cycles(&build);
    let procs = 2;
    let best = |model: SwitchModel| {
        [4usize, 8, 12]
            .iter()
            .map(|&t| {
                let app = build(procs * t);
                let r = run_app(&app, cfgm(model, procs, t)).unwrap();
                efficiency(baseline, procs, r.cycles)
            })
            .fold(0.0f64, f64::max)
    };
    let sol = best(SwitchModel::SwitchOnLoad);
    let exp = best(SwitchModel::ExplicitSwitch);
    assert!(exp > sol + 0.25, "explicit {exp:.2} should far exceed switch-on-load {sol:.2}");
}

/// Table 8: with caches + conditional switch, modest thread counts reach
/// high efficiency for the cache-friendly applications.
#[test]
fn conditional_switch_needs_few_threads() {
    for kind in [AppKind::Blkmat, AppKind::Ugray] {
        let build = app_builder(kind, Scale::Small);
        let baseline = baseline_cycles(&build);
        let procs = 2;
        let reached = (1..=6).any(|t| {
            let app = build(procs * t);
            let r = run_app(&app, cfgm(SwitchModel::ConditionalSwitch, procs, t)).unwrap();
            efficiency(baseline, procs, r.cycles) >= 0.8
        });
        assert!(reached, "{kind} should reach 80% efficiency within 6 threads");
    }
}

/// §6.1: mp3d's poor locality keeps it the bandwidth hog even with caches.
#[test]
fn mp3d_is_the_bandwidth_outlier() {
    let mut rows: Vec<(AppKind, f64, f64)> = AppKind::ALL
        .iter()
        .map(|&kind| {
            let app = build_app(kind, Scale::Small, 8);
            let r = run_app(&app, cfgm(SwitchModel::ConditionalSwitch, 4, 2)).unwrap();
            (kind, r.bits_per_cycle(), r.cache.unwrap().hit_rate())
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    assert_eq!(rows[0].0, AppKind::Mp3d, "bandwidth ranking: {rows:?}");
}

/// §6.1: caching slashes bandwidth for the locality-friendly applications.
#[test]
fn caching_cuts_bandwidth_for_friendly_apps() {
    // sor's write-through stores (one per five loads) bound its savings.
    for (kind, factor) in [(AppKind::Sor, 0.75), (AppKind::Ugray, 0.5), (AppKind::Water, 0.5)] {
        let app = build_app(kind, Scale::Small, 8);
        let un = run_app(&app, cfgm(SwitchModel::ExplicitSwitch, 4, 2)).unwrap();
        let ca = run_app(&app, cfgm(SwitchModel::ConditionalSwitch, 4, 2)).unwrap();
        assert!(
            ca.bits_per_cycle() < factor * un.bits_per_cycle(),
            "{kind}: cached {:.2} vs uncached {:.2} bits/cycle",
            ca.bits_per_cycle(),
            un.bits_per_cycle()
        );
        assert!(ca.cache.unwrap().hit_rate() > 0.9, "{kind} hit rate");
    }
}

/// Figure 2 flavor: the water static balance is perfect only when the
/// thread count divides the molecule count.
#[test]
fn water_efficiency_is_erratic_in_thread_count() {
    use mtsim::apps::water::{build_water, WaterParams};
    let params = WaterParams { n_mol: 36, iters: 1, seed: 7 };
    let baseline = {
        let app = build_water(params, 1);
        run_app(&app, MachineConfig::ideal(1)).unwrap().cycles
    };
    // 18 threads divide 36 evenly; 24 do not (chunks of 1 and 2).
    let eff_at = |p: usize| {
        let app = build_water(params, p);
        let mut c = MachineConfig::ideal(p);
        c.max_cycles = 500_000_000;
        efficiency(baseline, p, run_app(&app, c).unwrap().cycles)
    };
    let balanced = eff_at(18);
    let imbalanced = eff_at(24);
    assert!(
        balanced > imbalanced + 0.15,
        "divisible thread count {balanced:.2} should beat non-divisible {imbalanced:.2}"
    );
}

/// Table 5's last column: the reorganization penalty is small.
#[test]
fn reorganization_penalty_is_a_few_percent() {
    for kind in AppKind::ALL {
        let app = build_app(kind, Scale::Tiny, 1);
        let mut c = MachineConfig::ideal(1);
        c.max_cycles = 500_000_000;
        let orig = mtsim::apps::run_app_with_program(&app, &app.program, c.clone()).unwrap();
        let (grouped, _) = app.grouped();
        let re = mtsim::apps::run_app_with_program(&app, &grouped, c).unwrap();
        let penalty = re.cycles as f64 / orig.cycles as f64 - 1.0;
        assert!((-0.005..0.12).contains(&penalty), "{kind}: penalty {:.1}%", penalty * 100.0);
    }
}

/// Table 2 vs Table 4: grouping eliminates the troublesome 1-2 cycle runs.
#[test]
fn grouping_removes_short_runs() {
    let app = build_app(AppKind::Sor, Scale::Tiny, 4);
    let sol = run_app(&app, cfgm(SwitchModel::SwitchOnLoad, 2, 2)).unwrap();
    let exp = run_app(&app, cfgm(SwitchModel::ExplicitSwitch, 2, 2)).unwrap();
    let short_sol = sol.run_lengths.fraction_at(1) + sol.run_lengths.fraction_at(2);
    let short_exp = exp.run_lengths.fraction_at(1) + exp.run_lengths.fraction_at(2);
    assert!(short_sol > 0.3, "sor's ungrouped runs are dominated by 1-2 cycles: {short_sol}");
    assert!(short_exp < 0.05, "grouping should erase them: {short_exp}");
    assert!(exp.run_lengths.mean() > 2.5 * sol.run_lengths.mean());
}

/// Cross-model determinism: every model computes exactly the same verified
/// result, and repeated runs are cycle-identical.
#[test]
fn determinism_across_runs_and_models() {
    for kind in [AppKind::Sieve, AppKind::Locus] {
        for model in [SwitchModel::SwitchOnLoad, SwitchModel::ConditionalSwitch] {
            let app = build_app(kind, Scale::Tiny, 4);
            let a = run_app(&app, cfgm(model, 2, 2)).unwrap();
            let b = run_app(&app, cfgm(model, 2, 2)).unwrap();
            assert_eq!(a.cycles, b.cycles, "{kind}/{model}");
            assert_eq!(a.switches_taken, b.switches_taken, "{kind}/{model}");
        }
    }
}
