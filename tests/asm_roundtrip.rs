//! Listing/parse round-trip across all real programs: every application
//! (ungrouped and grouped) must survive `listing()` → `parse_program()`
//! unchanged.

use mtsim::apps::{build_app, AppKind, Scale};
use mtsim::asm::parse_program;

#[test]
fn all_applications_roundtrip_through_text() {
    for kind in AppKind::ALL {
        let app = build_app(kind, Scale::Tiny, 4);
        let text = app.program.listing();
        let back =
            parse_program(app.program.name(), &text).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(back.insts(), app.program.insts(), "{kind} (original)");

        let (grouped, _) = app.grouped();
        let text = grouped.listing();
        let back = parse_program(grouped.name(), &text).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(back.insts(), grouped.insts(), "{kind} (grouped)");
    }
}

#[test]
fn parsed_program_runs_identically() {
    use mtsim::core::{Machine, MachineConfig, SwitchModel};

    let app = build_app(AppKind::Sieve, Scale::Tiny, 2);
    let reparsed = parse_program("sieve", &app.program.listing()).unwrap();
    // local_words metadata is not part of the text format; carry it over.
    let reparsed = reparsed.with_local_words(app.program.local_words());

    let cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 1, 2);
    let a = Machine::new(cfg.clone(), &app.program, app.shared.clone()).run().unwrap();
    let b = Machine::new(cfg, &reparsed, app.shared.clone()).run().unwrap();
    assert_eq!(a.result.cycles, b.result.cycles);
    assert_eq!(a.result.instructions, b.result.instructions);
    app.verify(&b.shared).unwrap();
}
