//! Every bundled application must survive a seeded unreliable network:
//! either it completes with host-verified results (absorbing the faults
//! through the retry protocol), or it fails with a typed error — never a
//! panic, never a hang past the watchdog.

use mtsim::apps::{build_app, run_app, AppKind, Scale};
use mtsim::core::{MachineConfig, SwitchModel};
use mtsim::mem::FaultConfig;

fn faulty_cfg(seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 2).with_faults(FaultConfig {
        seed,
        drop_rate: 0.02,
        delay_rate: 0.05,
        dup_rate: 0.02,
        ..FaultConfig::default()
    });
    cfg.max_cycles = 2_000_000_000;
    cfg
}

#[test]
fn all_apps_survive_an_unreliable_network() {
    let mut total_recoveries = 0;
    for kind in AppKind::ALL {
        let app = build_app(kind, Scale::Tiny, 4);
        let r = run_app(&app, faulty_cfg(20260807))
            .unwrap_or_else(|e| panic!("{} under faults: {e}", kind.name()));
        total_recoveries += r.total_retries() + r.total_timeouts();
    }
    assert!(
        total_recoveries > 0,
        "a 2% drop rate across seven apps must exercise the retry protocol"
    );
}

#[test]
fn faulted_app_runs_reproduce_bit_identically() {
    let app = build_app(AppKind::Sor, Scale::Tiny, 4);
    let a = run_app(&app, faulty_cfg(7)).expect("run a");
    let b = run_app(&app, faulty_cfg(7)).expect("run b");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same run");
    let c = run_app(&app, faulty_cfg(8)).expect("run c");
    assert_ne!(a.cycles, c.cycles, "different seed, different timing");
}
