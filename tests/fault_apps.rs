//! Every bundled application must survive a seeded unreliable network:
//! either it completes with host-verified results (absorbing the faults
//! through the retry protocol), or it fails with a typed error — never a
//! panic, never a hang past the watchdog.

use mtsim::apps::{build_app, run_app, AppKind, Scale};
use mtsim::asm::ProgramBuilder;
use mtsim::core::{Machine, MachineConfig, SimError, SwitchModel};
use mtsim::isa::AccessHint;
use mtsim::mem::{FaultConfig, SharedMemory};

fn faulty_cfg(seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, 2, 2).with_faults(FaultConfig {
        seed,
        drop_rate: 0.02,
        delay_rate: 0.05,
        dup_rate: 0.02,
        ..FaultConfig::default()
    });
    cfg.max_cycles = 2_000_000_000;
    cfg
}

#[test]
fn all_apps_survive_an_unreliable_network() {
    let mut total_recoveries = 0;
    for kind in AppKind::ALL {
        let app = build_app(kind, Scale::Tiny, 4);
        let r = run_app(&app, faulty_cfg(20260807))
            .unwrap_or_else(|e| panic!("{} under faults: {e}", kind.name()));
        total_recoveries += r.total_retries() + r.total_timeouts();
    }
    assert!(
        total_recoveries > 0,
        "a 2% drop rate across seven apps must exercise the retry protocol"
    );
}

#[test]
fn faulted_app_runs_reproduce_bit_identically() {
    let app = build_app(AppKind::Sor, Scale::Tiny, 4);
    let a = run_app(&app, faulty_cfg(7)).expect("run a");
    let b = run_app(&app, faulty_cfg(7)).expect("run b");
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same run");
    let c = run_app(&app, faulty_cfg(8)).expect("run c");
    assert_ne!(a.cycles, c.cycles, "different seed, different timing");
}

#[test]
fn deadlock_report_names_the_same_waiters_across_runs_at_a_fixed_seed() {
    // Regression: the deadlock report must be a pure function of
    // (program, config, fault seed). A detector that walks threads in a
    // timing-dependent order — or whose fault stream isn't fully seeded —
    // would reorder, renumber, or re-time the waiter set between runs.
    let build = || {
        // A barrier miscounted for 5 arrivals entered by only 4 threads:
        // all four spin on the arrival counter forever, under an
        // unreliable network.
        let mut b = ProgramBuilder::new("short-barrier");
        b.fetch_add_discard(b.const_i(0), b.const_i(1), AccessHint::Data);
        b.while_(b.load_shared_hint(b.const_i(0), AccessHint::Spin).ne(5), |_b| {});
        b.finish()
    };
    let run = || {
        let mut cfg = faulty_cfg(0xDEAD_BEEF);
        cfg.max_cycles = 50_000_000;
        match Machine::new(cfg, &build(), SharedMemory::new(4)).run() {
            Err(SimError::Deadlock { cycle, halted_threads, waiters }) => {
                (cycle, halted_threads, waiters)
            }
            other => panic!("expected a proven deadlock, got {other:?}"),
        }
    };

    let (cycle, halted, waiters) = run();
    assert_eq!(halted, 0);
    let mut who: Vec<usize> = waiters.iter().map(|w| w.thread).collect();
    who.sort_unstable();
    assert_eq!(who, vec![0, 1, 2, 3], "all four threads must be named");
    for w in &waiters {
        assert_eq!((w.addr, w.value), (0, 4), "all wait on the counter stuck at 4");
    }

    for rerun in 0..2 {
        assert_eq!(run(), (cycle, halted, waiters.clone()), "rerun {rerun} diverged");
    }
}
