//! Tier-1 coverage for the `mtsim-check` differential harness: a small
//! fuzzing campaign must pass, and a deliberately miscompiled program —
//! the grouping pass's one forbidden move, reordering a shared load
//! across a shared store — must be caught by the harness and shrunk to a
//! small witness.

use mtsim::check::{
    check_program, compare, fuzz, generate, metric, miscompiled_candidates, run_oracle, shrink,
    FuzzConfig, Stmt, TestProgram, IE,
};
use mtsim::core::{Machine, MachineConfig, SwitchModel};
use mtsim_isa::AluOp;

/// A short campaign over the full model × latency × grouping × fault grid.
#[test]
fn small_fuzz_campaign_matches_oracle() {
    let summary = fuzz(FuzzConfig { cases: 20, seed: 0xB00, jobs: 2, ..Default::default() });
    assert!(summary.passed(), "{}", summary.report());
    assert!(summary.engine_runs > 500, "grid too small: {} runs", summary.engine_runs);
}

/// Replays one specific generated case so a regression in any layer
/// (generator determinism, oracle, engine, grouping) fails loudly here
/// with a stable seed to debug from.
#[test]
fn pinned_seed_case_passes_the_grid() {
    let tp = generate(0x5EED);
    check_program(&tp, 0x5EED).unwrap_or_else(|f| panic!("{}: {}", f.label, f.detail));
}

/// True when some miscompiled variant of the case diverges from the
/// oracle on a single-threaded single-processor run.
fn miscompile_detected(tp: &TestProgram) -> bool {
    let case = tp.with_nthreads(1).emit();
    let cfg = MachineConfig::new(SwitchModel::Ideal, 1, 1);
    let local_words = cfg.local_mem_words.max(case.program.local_words());
    let Ok(oracle) = run_oracle(&case.program, case.shared.clone(), 1, local_words, 1_000_000)
    else {
        return false;
    };
    miscompiled_candidates(&case.program).iter().any(|broken| {
        let mut cfg = MachineConfig::new(SwitchModel::Ideal, 1, 1);
        cfg.max_cycles = 10_000_000;
        match Machine::new(cfg, broken, case.shared.clone()).run() {
            Err(_) => true, // wild access / watchdog: also a caught miscompile
            Ok(run) => compare(&oracle, &run, true).is_err(),
        }
    })
}

/// The §4 reorganization constraint, checked end to end: break the
/// grouped image by swapping a shared store with a following shared
/// load, prove the harness notices, and shrink the witness program to at
/// most 20 instructions.
#[test]
fn miscompiled_fixture_is_caught_and_shrunk() {
    // A store/load pair on the same output slot, buried in noise the
    // shrinker must strip away.
    let tp = TestProgram {
        nthreads: 2,
        in_words: 8,
        acc_cells: 2,
        out_slots: 2,
        local_words: 4,
        input_seed: 1,
        stmts: vec![
            Stmt::AssignI(0, IE::LoadIn(Box::new(IE::Tid))),
            Stmt::StoreLocal(0, IE::Var(0)),
            Stmt::StoreOut(0, IE::Const(7)),
            Stmt::AssignI(1, IE::LoadOut(0)),
            Stmt::StoreOut(1, IE::Bin(AluOp::Add, Box::new(IE::Var(1)), Box::new(IE::Const(1)))),
            Stmt::FaaAcc(0, IE::Const(3)),
            Stmt::For(
                2,
                vec![Stmt::AssignI(
                    2,
                    IE::Bin(AluOp::Add, Box::new(IE::Var(2)), Box::new(IE::Const(1))),
                )],
            ),
        ],
    };
    assert!(miscompile_detected(&tp), "fixture miscompile was not caught");

    let min = shrink(&tp, 2_000, miscompile_detected);
    assert!(miscompile_detected(&min), "shrinker lost the failure");
    assert!(metric(&min) <= metric(&tp));
    let insts = min.with_nthreads(1).emit().program.len();
    assert!(
        insts <= 20,
        "witness should shrink to <= 20 instructions, got {insts}:\n{}",
        min.with_nthreads(1).emit().program.listing()
    );
}

/// The honest grouping pass must never trip the same detector.
#[test]
fn honest_grouping_pass_is_not_flagged() {
    for seed in 0..12 {
        let tp = generate(seed);
        let case = tp.with_nthreads(1).emit();
        let grouped = mtsim::opt::group_shared_loads(&case.program).program;
        let cfg = MachineConfig::new(SwitchModel::Ideal, 1, 1);
        let local_words = cfg.local_mem_words.max(case.program.local_words());
        let oracle =
            run_oracle(&case.program, case.shared.clone(), 1, local_words, 1_000_000).unwrap();
        let mut cfg = MachineConfig::new(SwitchModel::Ideal, 1, 1);
        cfg.max_cycles = 10_000_000;
        let run = Machine::new(cfg, &grouped, case.shared.clone()).run().unwrap();
        compare(&oracle, &run, true).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
    }
}
