//! Property-based tests: the builder + engine evaluate expressions exactly
//! like a host-side reference interpreter, and the grouping pass preserves
//! program semantics on arbitrary generated programs.

use mtsim::asm::{IExpr, Program, ProgramBuilder};
use mtsim::core::{Machine, MachineConfig, SwitchModel};
use mtsim::mem::SharedMemory;
use mtsim::opt::group_shared_loads;
use proptest::prelude::*;

const MEM_WORDS: u64 = 64;

/// Host model of the machine's integer semantics.
fn host_alu(op: u8, a: i64, b: i64) -> i64 {
    match op {
        0 => a.wrapping_add(b),
        1 => a.wrapping_sub(b),
        2 => a.wrapping_mul(b),
        3 => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        4 => a & b,
        5 => a | b,
        6 => a ^ b,
        _ => unreachable!(),
    }
}

/// A host-evaluable integer expression over the initial memory image.
#[derive(Debug, Clone)]
enum HExpr {
    Const(i64),
    Load(u64),
    Bin(u8, Box<HExpr>, Box<HExpr>),
}

impl HExpr {
    fn eval(&self, mem: &[i64]) -> i64 {
        match self {
            HExpr::Const(v) => *v,
            HExpr::Load(a) => mem[*a as usize],
            HExpr::Bin(op, l, r) => host_alu(*op, l.eval(mem), r.eval(mem)),
        }
    }

    fn to_iexpr(&self, b: &ProgramBuilder) -> IExpr {
        match self {
            HExpr::Const(v) => IExpr::Const(*v),
            HExpr::Load(a) => b.load_shared(*a as i64),
            HExpr::Bin(op, l, r) => {
                let le = l.to_iexpr(b);
                let re = r.to_iexpr(b);
                match op {
                    0 => le + re,
                    1 => le - re,
                    2 => le * re,
                    3 => le / re,
                    4 => le & re,
                    5 => le | re,
                    _ => le ^ re,
                }
            }
        }
    }
}

fn hexpr_strategy() -> impl Strategy<Value = HExpr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(HExpr::Const),
        (0u64..MEM_WORDS).prop_map(HExpr::Load),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        (0u8..7, inner.clone(), inner)
            .prop_map(|(op, l, r)| HExpr::Bin(op, Box::new(l), Box::new(r)))
    })
}

fn run_single(program: &Program, init: &[i64], model: SwitchModel) -> SharedMemory {
    let mut mem = SharedMemory::new(MEM_WORDS + 8);
    for (k, &v) in init.iter().enumerate() {
        mem.write_i64(k as u64, v);
    }
    let mut cfg = MachineConfig::new(model, 1, 1);
    cfg.max_cycles = 10_000_000;
    Machine::new(cfg, program, mem).run().expect("run").shared
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary expression trees compile and evaluate to exactly the
    /// host-reference value, under both a plain and a split-phase model.
    #[test]
    fn expressions_match_host_reference(
        expr in hexpr_strategy(),
        init in proptest::collection::vec(-1000i64..1000, MEM_WORDS as usize),
    ) {
        let want = expr.eval(&init);
        let mut b = ProgramBuilder::new("prop");
        let e = expr.to_iexpr(&b);
        let v = b.def_i("v", e);
        b.store_shared(b.const_i(MEM_WORDS as i64), v.get());
        let prog = b.finish();

        for model in [SwitchModel::SwitchOnLoad, SwitchModel::SwitchOnUse] {
            let out = run_single(&prog, &init, model);
            prop_assert_eq!(out.read_i64(MEM_WORDS), want, "model {}", model);
        }
    }

    /// The grouping pass preserves semantics: the full final memory image
    /// of the grouped program equals the original's, for arbitrary
    /// sequences of loads, stores, fetch-adds and expression statements.
    #[test]
    fn grouping_pass_preserves_memory_image(
        stmts in proptest::collection::vec(
            (0u8..3, 0u64..MEM_WORDS, hexpr_strategy()), 1..12),
        init in proptest::collection::vec(-100i64..100, MEM_WORDS as usize),
    ) {
        let mut b = ProgramBuilder::new("prop-group");
        for (kind, addr, expr) in &stmts {
            let e = expr.to_iexpr(&b);
            match kind {
                0 => {
                    // store expr to addr
                    b.store_shared(b.const_i(*addr as i64), e);
                }
                1 => {
                    // fetch-add expr into addr, keep result in memory too
                    let v = b.def_i("v", b.fetch_add(*addr as i64, e));
                    b.store_shared(b.const_i(((*addr + 1) % MEM_WORDS) as i64), v.get());
                }
                _ => {
                    // conditional store on expr sign (exercises branches)
                    let v = b.def_i("v", e);
                    b.if_(v.get().gt(0), |b| {
                        b.store_shared(b.const_i(*addr as i64), v.get());
                    });
                }
            }
        }
        let prog = b.finish();
        let grouped = group_shared_loads(&prog).program;

        let a = run_single(&prog, &init, SwitchModel::SwitchOnLoad);
        let g = run_single(&grouped, &init, SwitchModel::ExplicitSwitch);
        for addr in 0..MEM_WORDS + 8 {
            prop_assert_eq!(a.read_i64(addr), g.read_i64(addr), "word {}", addr);
        }
    }

    /// Multithreaded fetch-and-add accumulation is exact for any thread
    /// geometry.
    #[test]
    fn fetch_add_sums_for_any_geometry(
        procs in 1usize..6,
        threads in 1usize..5,
        reps in 1i64..8,
    ) {
        let mut b = ProgramBuilder::new("prop-faa");
        b.for_range("i", 0, reps, |b, _| {
            b.fetch_add_discard(b.const_i(0), b.tid() + 1, mtsim::isa::AccessHint::Data);
        });
        let prog = b.finish();
        let mut cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, procs, threads);
        cfg.max_cycles = 50_000_000;
        let fin = Machine::new(cfg, &prog, SharedMemory::new(1)).run().expect("run");
        let n = (procs * threads) as i64;
        prop_assert_eq!(fin.shared.read_i64(0), reps * n * (n + 1) / 2);
    }
}
