//! Randomized semantics tests: the builder + engine evaluate expressions
//! exactly like a host-side reference interpreter, and the grouping pass
//! preserves program semantics on arbitrary generated programs.
//!
//! Cases are generated from a fixed-seed [`mtsim_rng::Rng`], so every run
//! explores the identical corpus — failures reproduce by construction.

use mtsim::asm::{IExpr, Program, ProgramBuilder};
use mtsim::core::{Machine, MachineConfig, SwitchModel};
use mtsim::mem::SharedMemory;
use mtsim::opt::group_shared_loads;
use mtsim_rng::Rng;

const MEM_WORDS: u64 = 64;
const CASES: usize = 128;

/// Host model of the machine's integer semantics.
fn host_alu(op: u8, a: i64, b: i64) -> i64 {
    match op {
        0 => a.wrapping_add(b),
        1 => a.wrapping_sub(b),
        2 => a.wrapping_mul(b),
        3 => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        4 => a & b,
        5 => a | b,
        6 => a ^ b,
        _ => unreachable!(),
    }
}

/// A host-evaluable integer expression over the initial memory image.
#[derive(Debug, Clone)]
enum HExpr {
    Const(i64),
    Load(u64),
    Bin(u8, Box<HExpr>, Box<HExpr>),
}

impl HExpr {
    fn eval(&self, mem: &[i64]) -> i64 {
        match self {
            HExpr::Const(v) => *v,
            HExpr::Load(a) => mem[*a as usize],
            HExpr::Bin(op, l, r) => host_alu(*op, l.eval(mem), r.eval(mem)),
        }
    }

    fn to_iexpr(&self, b: &ProgramBuilder) -> IExpr {
        match self {
            HExpr::Const(v) => IExpr::Const(*v),
            HExpr::Load(a) => b.load_shared(*a as i64),
            HExpr::Bin(op, l, r) => {
                let le = l.to_iexpr(b);
                let re = r.to_iexpr(b);
                match op {
                    0 => le + re,
                    1 => le - re,
                    2 => le * re,
                    3 => le / re,
                    4 => le & re,
                    5 => le | re,
                    _ => le ^ re,
                }
            }
        }
    }
}

/// Random expression tree of bounded depth, mirroring the old proptest
/// `prop_recursive(4, 24, 3, …)` strategy.
fn gen_expr(rng: &mut Rng, depth: u32) -> HExpr {
    if depth == 0 || rng.chance(0.3) {
        if rng.chance(0.5) {
            HExpr::Const(rng.range_i64(-1000, 1000))
        } else {
            HExpr::Load(rng.range_u64(0, MEM_WORDS))
        }
    } else {
        let op = rng.range_i64(0, 7) as u8;
        let l = gen_expr(rng, depth - 1);
        let r = gen_expr(rng, depth - 1);
        HExpr::Bin(op, Box::new(l), Box::new(r))
    }
}

fn gen_init(rng: &mut Rng, lo: i64, hi: i64) -> Vec<i64> {
    (0..MEM_WORDS).map(|_| rng.range_i64(lo, hi)).collect()
}

fn run_single(program: &Program, init: &[i64], model: SwitchModel) -> SharedMemory {
    let mut mem = SharedMemory::new(MEM_WORDS + 8);
    for (k, &v) in init.iter().enumerate() {
        mem.write_i64(k as u64, v);
    }
    let mut cfg = MachineConfig::new(model, 1, 1);
    cfg.max_cycles = 10_000_000;
    Machine::new(cfg, program, mem).run().expect("run").shared
}

/// Arbitrary expression trees compile and evaluate to exactly the
/// host-reference value, under both a plain and a split-phase model.
#[test]
fn expressions_match_host_reference() {
    let mut rng = Rng::seed_from_u64(0xE5EE_D001);
    for case in 0..CASES {
        let expr = gen_expr(&mut rng, 4);
        let init = gen_init(&mut rng, -1000, 1000);
        let want = expr.eval(&init);
        let mut b = ProgramBuilder::new("prop");
        let e = expr.to_iexpr(&b);
        let v = b.def_i("v", e);
        b.store_shared(b.const_i(MEM_WORDS as i64), v.get());
        let prog = b.finish();

        for model in [SwitchModel::SwitchOnLoad, SwitchModel::SwitchOnUse] {
            let out = run_single(&prog, &init, model);
            assert_eq!(out.read_i64(MEM_WORDS), want, "case {case}, model {model}");
        }
    }
}

/// The grouping pass preserves semantics: the full final memory image
/// of the grouped program equals the original's, for arbitrary
/// sequences of loads, stores, fetch-adds and expression statements.
#[test]
fn grouping_pass_preserves_memory_image() {
    let mut rng = Rng::seed_from_u64(0xE5EE_D002);
    for case in 0..CASES {
        let n_stmts = rng.range_u64(1, 12) as usize;
        let stmts: Vec<(u8, u64, HExpr)> = (0..n_stmts)
            .map(|_| {
                let kind = rng.range_i64(0, 3) as u8;
                let addr = rng.range_u64(0, MEM_WORDS);
                let expr = gen_expr(&mut rng, 4);
                (kind, addr, expr)
            })
            .collect();
        let init = gen_init(&mut rng, -100, 100);

        let mut b = ProgramBuilder::new("prop-group");
        for (kind, addr, expr) in &stmts {
            let e = expr.to_iexpr(&b);
            match kind {
                0 => {
                    // store expr to addr
                    b.store_shared(b.const_i(*addr as i64), e);
                }
                1 => {
                    // fetch-add expr into addr, keep result in memory too
                    let v = b.def_i("v", b.fetch_add(*addr as i64, e));
                    b.store_shared(b.const_i(((*addr + 1) % MEM_WORDS) as i64), v.get());
                }
                _ => {
                    // conditional store on expr sign (exercises branches)
                    let v = b.def_i("v", e);
                    b.if_(v.get().gt(0), |b| {
                        b.store_shared(b.const_i(*addr as i64), v.get());
                    });
                }
            }
        }
        let prog = b.finish();
        let grouped = group_shared_loads(&prog).program;

        let a = run_single(&prog, &init, SwitchModel::SwitchOnLoad);
        let g = run_single(&grouped, &init, SwitchModel::ExplicitSwitch);
        for addr in 0..MEM_WORDS + 8 {
            assert_eq!(a.read_i64(addr), g.read_i64(addr), "case {case}, word {addr}");
        }
    }
}

/// Multithreaded fetch-and-add accumulation is exact for any thread
/// geometry.
#[test]
fn fetch_add_sums_for_any_geometry() {
    let mut rng = Rng::seed_from_u64(0xE5EE_D003);
    for _ in 0..CASES {
        let procs = rng.range_u64(1, 6) as usize;
        let threads = rng.range_u64(1, 5) as usize;
        let reps = rng.range_i64(1, 8);
        let mut b = ProgramBuilder::new("prop-faa");
        b.for_range("i", 0, reps, |b, _| {
            b.fetch_add_discard(b.const_i(0), b.tid() + 1, mtsim::isa::AccessHint::Data);
        });
        let prog = b.finish();
        let mut cfg = MachineConfig::new(SwitchModel::SwitchOnLoad, procs, threads);
        cfg.max_cycles = 50_000_000;
        let fin = Machine::new(cfg, &prog, SharedMemory::new(1)).run().expect("run");
        let n = (procs * threads) as i64;
        assert_eq!(fin.shared.read_i64(0), reps * n * (n + 1) / 2);
    }
}
