//! Observability correctness (DESIGN.md §17): cycle attribution must
//! account for every machine cycle on every application × switch model,
//! attaching a recorder must not change the simulation, and fault-retry
//! backoff must charge to memory-stall, never idle.

use mtsim::apps::{build_app, profile_app, run_app, AppKind, Scale};
use mtsim::core::{Machine, MachineConfig, NoopRecorder, ObsRecorder, RunResult, SwitchModel};
use mtsim::mem::FaultConfig;

fn cfg(model: SwitchModel, procs: usize, t: usize) -> MachineConfig {
    let latency = if model == SwitchModel::Ideal { 0 } else { 200 };
    MachineConfig::new(model, procs, t).with_latency(latency)
}

/// Every cycle of every processor is charged to exactly one category:
/// `busy + switch-ovh + mem-stall + lock-spin + barrier-wait + idle`
/// summed over threads and processors equals `processors × cycles`.
#[test]
fn attribution_conserves_cycles_on_every_app_and_model() {
    for kind in AppKind::ALL {
        let app = build_app(kind, Scale::Tiny, 4);
        for model in SwitchModel::ALL {
            let (r, rec) = profile_app(&app, cfg(model, 2, 2), 64)
                .unwrap_or_else(|e| panic!("{kind:?} on {model:?}: {e}"));
            assert_eq!(rec.attr.conservation_error(r.cycles), None, "{kind:?} on {model:?}");
            let s = rec.attr.summary();
            assert_eq!(s.total(), 2 * r.cycles, "{kind:?} on {model:?}");
            assert!(s.busy > 0, "{kind:?} on {model:?}: no busy cycles attributed");
        }
    }
}

/// `run()`, `run_with(NoopRecorder)`, and `run_with(ObsRecorder)` are the
/// same simulation: identical cycles and statistics.
#[test]
fn attaching_a_recorder_does_not_change_the_simulation() {
    fn key(r: &RunResult) -> (u64, u64, u64, u64, u64, u64) {
        let s = r.stats();
        (s.cycles, s.instructions, s.busy, s.idle, s.switches_taken, s.reads_issued)
    }
    for model in [SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch, SwitchModel::SwitchOnUse]
    {
        let app = build_app(AppKind::Sor, Scale::Tiny, 4);
        let baseline = run_app(&app, cfg(model, 2, 2)).unwrap();
        let (profiled, _) = profile_app(&app, cfg(model, 2, 2), 256).unwrap();
        assert_eq!(key(&baseline), key(&profiled), "{model:?}");
    }

    // And the raw engine entry points agree on a hand-built program.
    let app = build_app(AppKind::Sieve, Scale::Tiny, 2);
    let c = cfg(SwitchModel::SwitchOnLoad, 1, 2);
    let plain = Machine::try_new(c.clone(), &app.program, app.shared.clone())
        .and_then(Machine::run)
        .unwrap();
    let noop = Machine::try_new(c.clone(), &app.program, app.shared.clone())
        .and_then(|m| m.run_with(&mut NoopRecorder))
        .unwrap();
    let mut rec = ObsRecorder::new(1, 2);
    let obs = Machine::try_new(c, &app.program, app.shared.clone())
        .and_then(|m| m.run_with(&mut rec))
        .unwrap();
    assert_eq!(key(&plain.result), key(&noop.result));
    assert_eq!(key(&plain.result), key(&obs.result));
}

/// Pinned regression for the fault-retry attribution rule: cycles a
/// thread spends waiting out NACK backoff and timeout resends extend its
/// memory reply, so they charge to memory-stall — never to idle, which is
/// reserved for end-of-run slack. One processor, one thread,
/// switch-on-load: with nothing else to run, every retry wait would
/// otherwise look exactly like idleness.
#[test]
fn fault_retry_backoff_charges_memory_stall_not_idle() {
    let app = build_app(AppKind::Sieve, Scale::Tiny, 1);
    let mut c = cfg(SwitchModel::SwitchOnLoad, 1, 1).with_faults(FaultConfig {
        seed: 7,
        drop_rate: 0.05,
        max_retries: 32,
        ..FaultConfig::default()
    });
    c.max_cycles = 500_000_000;

    let mut rec = ObsRecorder::new(1, 1);
    let fin = Machine::try_new(c, &app.program, app.shared.clone())
        .and_then(|m| m.run_with(&mut rec))
        .unwrap();
    let r = &fin.result;
    assert!(r.total_retries() + r.total_timeouts() > 0, "fault schedule injected nothing");

    assert_eq!(rec.attr.conservation_error(r.cycles), None);
    let s = rec.attr.summary();
    // The single thread halts last, so there is no end-of-run slack: the
    // whole retry wait must have landed in memory-stall.
    assert_eq!(s.idle, 0, "retry backoff leaked into idle: {s:?}");
    let baseline = run_app(&app, cfg(SwitchModel::SwitchOnLoad, 1, 1)).unwrap();
    assert!(
        s.memory_stall > baseline.cycles - baseline.stats().busy,
        "memory-stall {} does not cover the fault-extended waits",
        s.memory_stall
    );
}
