//! End-to-end contracts of the sweep engine (DESIGN.md §14): the result
//! table is a pure function of the spec — independent of worker count,
//! submission order, and artifact-cache state — and a single poisoned
//! grid point degrades to one failing row, never a dead sweep.

use mtsim::apps::{AppKind, Scale};
use mtsim::core::SwitchModel;
use mtsim::sweep::{run_job_specs, run_jobs, run_sweep, JobSpec, SweepOpts, SweepSpec};

/// A grid that exercises both program variants (grouped and ungrouped),
/// several cache keys, and the fault-injection path.
fn faulty_grid() -> SweepSpec {
    SweepSpec {
        apps: vec![AppKind::Sieve, AppKind::Sor],
        models: vec![SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch],
        procs: vec![2],
        threads: vec![1, 2],
        seeds: vec![1, 2],
        drop_rates: vec![0.0, 0.05],
        scale: Scale::Tiny,
        ..SweepSpec::default()
    }
}

fn opts(workers: usize) -> SweepOpts {
    SweepOpts { workers: Some(workers), ..SweepOpts::default() }
}

/// Deterministic submission shuffle: interleave front and back halves so
/// neighbouring ids land on different workers.
fn shuffled(mut jobs: Vec<JobSpec>) -> Vec<JobSpec> {
    let back = jobs.split_off(jobs.len() / 2);
    let mut out = Vec::with_capacity(jobs.len() + back.len());
    for (a, b) in back.iter().zip(jobs.iter()) {
        out.push(*a);
        out.push(*b);
    }
    out.extend(back.iter().skip(jobs.len()).copied());
    out
}

#[test]
fn parallel_shuffled_sweep_is_byte_identical_to_serial() {
    let spec = faulty_grid();
    let serial = run_sweep(&spec, &opts(1)).unwrap();
    let parallel = run_job_specs(shuffled(spec.expand()), &opts(8));

    assert_eq!(serial.jobs.len(), 32);
    assert_eq!(serial.results_json(), parallel.results_json());
    assert_eq!(serial.results_csv(), parallel.results_csv());
    // The fault seeds are live, not decorative: every drop_rate > 0 row
    // must have gone through at least one retry somewhere in the grid.
    let retries: u64 = serial
        .jobs
        .iter()
        .filter(|j| j.spec.drop_rate > 0.0)
        .filter_map(|j| j.result.as_ref().ok())
        .map(|s| s.retries)
        .sum();
    assert!(retries > 0, "fault injection never fired");
}

#[test]
fn cached_artifacts_do_not_change_results() {
    // One sweep sharing artifacts across seeds vs. one fresh single-job
    // sweep per grid point (cold cache each time): identical stats.
    let spec = SweepSpec {
        apps: vec![AppKind::Sieve],
        models: vec![SwitchModel::ExplicitSwitch],
        procs: vec![2],
        threads: vec![2],
        seeds: vec![0, 1, 2],
        drop_rates: vec![0.02],
        scale: Scale::Tiny,
        ..SweepSpec::default()
    };
    let shared = run_sweep(&spec, &opts(2)).unwrap();
    assert!(shared.cache_hits > 0, "grid never reused an artifact");

    for job in &shared.jobs {
        let fresh = run_job_specs(vec![job.spec], &opts(1));
        assert_eq!(fresh.jobs.len(), 1);
        assert_eq!(
            job.result.as_ref().unwrap(),
            fresh.jobs[0].result.as_ref().unwrap(),
            "cached run diverged from cold run for job {}",
            job.spec.id
        );
    }
}

#[test]
fn pool_isolates_a_panicking_job() {
    let items: Vec<u32> = (0..16).collect();
    let ran = run_jobs(items, 4, |_, &n| {
        if n == 7 {
            panic!("poisoned job {n}");
        }
        n * 2
    });
    assert_eq!(ran.len(), 16);
    for (n, result) in ran {
        if n == 7 {
            let message = result.unwrap_err();
            assert!(message.contains("poisoned job 7"), "lost panic payload: {message}");
        } else {
            assert_eq!(result.unwrap(), n * 2);
        }
    }
}

#[test]
fn failing_grid_point_is_one_failing_row() {
    // drop_rate 1.0 with a tiny retry budget can never complete a remote
    // read; those points must fail typed while the rest of the grid
    // finishes normally.
    let spec = SweepSpec {
        apps: vec![AppKind::Sieve],
        models: vec![SwitchModel::SwitchOnLoad],
        procs: vec![2],
        threads: vec![2],
        seeds: vec![7],
        drop_rates: vec![0.0, 1.0],
        scale: Scale::Tiny,
        max_retries: 2,
        ..SweepSpec::default()
    };
    let out = run_sweep(&spec, &opts(2)).unwrap();
    assert_eq!(out.jobs.len(), 2);
    assert_eq!(out.ok_count(), 1);
    assert_eq!(out.failed_count(), 1);

    let ok = &out.jobs[0];
    assert_eq!(ok.spec.drop_rate, 0.0);
    assert!(ok.result.is_ok());

    let failed = &out.jobs[1];
    assert_eq!(failed.spec.drop_rate, 1.0);
    let err = failed.result.as_ref().unwrap_err();
    assert_eq!(err.kind(), "fault", "unexpected error: {err}");

    // The failure shows up as a typed row in both renderings.
    assert!(out.results_json().contains("\"status\":\"error\""));
    assert!(out.results_csv().lines().any(|l| l.contains(",error,")));
}
