//! End-to-end contracts of the sweep engine (DESIGN.md §14): the result
//! table is a pure function of the spec — independent of worker count,
//! submission order, and artifact-cache state — and a single poisoned
//! grid point degrades to one failing row, never a dead sweep.

use mtsim::apps::{AppKind, Scale};
use mtsim::core::SwitchModel;
use mtsim::sweep::{
    load_checkpoint, resume_sweep, run_job_specs, run_jobs, run_sweep, ChaosPlan, JobSpec,
    SweepError, SweepOpts, SweepSpec,
};

/// A grid that exercises both program variants (grouped and ungrouped),
/// several cache keys, and the fault-injection path.
fn faulty_grid() -> SweepSpec {
    SweepSpec {
        apps: vec![AppKind::Sieve, AppKind::Sor],
        models: vec![SwitchModel::SwitchOnLoad, SwitchModel::ExplicitSwitch],
        procs: vec![2],
        threads: vec![1, 2],
        seeds: vec![1, 2],
        drop_rates: vec![0.0, 0.05],
        scale: Scale::Tiny,
        ..SweepSpec::default()
    }
}

fn opts(workers: usize) -> SweepOpts {
    SweepOpts { workers: Some(workers), ..SweepOpts::default() }
}

/// Deterministic submission shuffle: interleave front and back halves so
/// neighbouring ids land on different workers.
fn shuffled(mut jobs: Vec<JobSpec>) -> Vec<JobSpec> {
    let back = jobs.split_off(jobs.len() / 2);
    let mut out = Vec::with_capacity(jobs.len() + back.len());
    for (a, b) in back.iter().zip(jobs.iter()) {
        out.push(*a);
        out.push(*b);
    }
    out.extend(back.iter().skip(jobs.len()).copied());
    out
}

#[test]
fn parallel_shuffled_sweep_is_byte_identical_to_serial() {
    let spec = faulty_grid();
    let serial = run_sweep(&spec, &opts(1)).unwrap();
    let parallel = run_job_specs(shuffled(spec.expand()), &opts(8));

    assert_eq!(serial.jobs.len(), 32);
    assert_eq!(serial.results_json(), parallel.results_json());
    assert_eq!(serial.results_csv(), parallel.results_csv());
    // The fault seeds are live, not decorative: every drop_rate > 0 row
    // must have gone through at least one retry somewhere in the grid.
    let retries: u64 = serial
        .jobs
        .iter()
        .filter(|j| j.spec.drop_rate > 0.0)
        .filter_map(|j| j.result.as_ref().ok())
        .map(|s| s.retries)
        .sum();
    assert!(retries > 0, "fault injection never fired");
}

#[test]
fn cached_artifacts_do_not_change_results() {
    // One sweep sharing artifacts across seeds vs. one fresh single-job
    // sweep per grid point (cold cache each time): identical stats.
    let spec = SweepSpec {
        apps: vec![AppKind::Sieve],
        models: vec![SwitchModel::ExplicitSwitch],
        procs: vec![2],
        threads: vec![2],
        seeds: vec![0, 1, 2],
        drop_rates: vec![0.02],
        scale: Scale::Tiny,
        ..SweepSpec::default()
    };
    let shared = run_sweep(&spec, &opts(2)).unwrap();
    assert!(shared.cache_hits > 0, "grid never reused an artifact");

    for job in &shared.jobs {
        let fresh = run_job_specs(vec![job.spec], &opts(1));
        assert_eq!(fresh.jobs.len(), 1);
        assert_eq!(
            job.result.as_ref().unwrap(),
            fresh.jobs[0].result.as_ref().unwrap(),
            "cached run diverged from cold run for job {}",
            job.spec.id
        );
    }
}

#[test]
fn pool_isolates_a_panicking_job() {
    let items: Vec<u32> = (0..16).collect();
    let ran = run_jobs(items, 4, |_, &n| {
        if n == 7 {
            panic!("poisoned job {n}");
        }
        n * 2
    });
    assert_eq!(ran.len(), 16);
    for (n, result) in ran {
        if n == 7 {
            let message = result.unwrap_err();
            assert!(message.contains("poisoned job 7"), "lost panic payload: {message}");
        } else {
            assert_eq!(result.unwrap(), n * 2);
        }
    }
}

#[test]
fn failing_grid_point_is_one_failing_row() {
    // drop_rate 1.0 with a tiny retry budget can never complete a remote
    // read; those points must fail typed while the rest of the grid
    // finishes normally.
    let spec = SweepSpec {
        apps: vec![AppKind::Sieve],
        models: vec![SwitchModel::SwitchOnLoad],
        procs: vec![2],
        threads: vec![2],
        seeds: vec![7],
        drop_rates: vec![0.0, 1.0],
        scale: Scale::Tiny,
        max_retries: 2,
        ..SweepSpec::default()
    };
    let out = run_sweep(&spec, &opts(2)).unwrap();
    assert_eq!(out.jobs.len(), 2);
    assert_eq!(out.ok_count(), 1);
    assert_eq!(out.failed_count(), 1);

    let ok = &out.jobs[0];
    assert_eq!(ok.spec.drop_rate, 0.0);
    assert!(ok.result.is_ok());

    let failed = &out.jobs[1];
    assert_eq!(failed.spec.drop_rate, 1.0);
    let err = failed.result.as_ref().unwrap_err();
    assert_eq!(err.kind(), "fault", "unexpected error: {err}");

    // The failure shows up as a typed row in both renderings.
    assert!(out.results_json().contains("\"status\":\"error\""));
    assert!(out.results_csv().lines().any(|l| l.contains(",error,")));
}

fn temp_ckpt(tag: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("mtsim-sweep-engine-{}-{tag}.jsonl", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn sweep_builds_each_artifact_exactly_once() {
    // Satellite contract: artifacts are keyed by what actually shapes
    // them (app + scale + thread count), so the 32-job grid builds each
    // of its handful of distinct artifacts once and serves the rest from
    // cache — regardless of worker count or claim order.
    let spec = faulty_grid();
    let out = run_sweep(&spec, &opts(4)).unwrap();
    assert_eq!(out.jobs.len(), 32);

    // 32 built-app lookups from the jobs themselves + 16 grouped-program
    // lookups (one per explicit-switch job), each of which consults the
    // built-app cache again for its base program: 64 lookups total.
    // Misses are exactly the distinct artifacts: {sieve, sor} x {2, 4
    // threads} built = 4, and the same four keys again for grouped
    // programs (neither app is shape-invariant across thread counts, so
    // content dedup keeps them distinct).
    let lookups = out.cache_hits + out.cache_misses;
    assert_eq!(lookups, 64, "unexpected number of cache lookups");
    assert_eq!(out.cache_misses, 8, "an artifact was built more than once");
    assert_eq!(out.cache_hits, 56);
}

#[test]
fn resume_after_kill_is_byte_identical_to_uninterrupted_run() {
    let spec = faulty_grid();
    let reference = run_sweep(&spec, &opts(1)).unwrap();
    let path = temp_ckpt("resume");

    // Kill the streamed run at a job boundary after 5 completions...
    let killed = run_sweep(
        &spec,
        &SweepOpts {
            workers: Some(4),
            stream: Some(path.clone()),
            chaos: Some(ChaosPlan { panic_once: vec![], kill_after: Some(5) }),
            ..SweepOpts::default()
        },
    );
    let Err(SweepError::Aborted { completed, .. }) = killed else {
        panic!("kill_after must abort the sweep, got {killed:?}");
    };
    assert!((5..32).contains(&completed), "implausible completion count {completed}");

    // ...then resume from the checkpoint and compare bytes.
    let resumed = run_sweep_resume(&spec, &path);
    assert_eq!(resumed.results_json(), reference.results_json());
    assert_eq!(resumed.results_csv(), reference.results_csv());

    // The finished checkpoint holds every record and loads cleanly.
    let ckpt = load_checkpoint(&path).unwrap();
    assert_eq!(ckpt.records.len(), 32);
    assert!(!ckpt.torn_tail);
    std::fs::remove_file(&path).ok();
}

fn run_sweep_resume(spec: &SweepSpec, path: &str) -> mtsim::sweep::SweepOutcome {
    resume_sweep(spec, &opts(2), path).unwrap()
}

#[test]
fn corrupt_checkpoints_are_typed_errors_never_partial_resumes() {
    let spec = faulty_grid();
    let path = temp_ckpt("corrupt");
    run_sweep(&spec, &SweepOpts { stream: Some(path.clone()), ..opts(1) }).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Interior bit flip: a complete line whose checksum no longer
    // matches is corruption, reported with its line number.
    let mut flipped = pristine.clone();
    let second_line = pristine.iter().position(|&b| b == b'\n').unwrap() + 12;
    flipped[second_line] ^= 0x01;
    std::fs::write(&path, &flipped).unwrap();
    match resume_sweep(&spec, &opts(1), &path) {
        Err(SweepError::Corrupt { line: 2, .. }) => {}
        other => panic!("bit flip must be Corrupt at line 2, got {other:?}"),
    }

    // Truncated final record that kept its newline: still a complete
    // line, still fails its checksum, so corruption — NOT the torn-tail
    // crash signature (which requires the newline to be missing).
    let last_nl = pristine.len() - 1;
    let prev_nl = pristine[..last_nl].iter().rposition(|&b| b == b'\n').unwrap();
    let mut cut = pristine[..prev_nl + 1 + (last_nl - prev_nl) / 2].to_vec();
    cut.push(b'\n');
    std::fs::write(&path, &cut).unwrap();
    match resume_sweep(&spec, &opts(1), &path) {
        Err(SweepError::Corrupt { .. }) => {}
        other => panic!("newline-terminated truncation must be Corrupt, got {other:?}"),
    }

    // A checkpoint from a different grid is refused outright.
    std::fs::write(&path, &pristine).unwrap();
    let other_spec = SweepSpec { seeds: vec![1, 2, 3], ..spec.clone() };
    match resume_sweep(&other_spec, &opts(1), &path) {
        Err(SweepError::SpecMismatch { .. }) => {}
        other => panic!("wrong spec must be SpecMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}
