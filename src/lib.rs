//! # mtsim — umbrella crate
//!
//! Re-exports the full public API of the `mtsim` workspace, a from-scratch
//! reproduction of Boothe & Ranade, *Improved Multithreading Techniques for
//! Hiding Communication Latency in Multiprocessors* (ISCA 1992).
//!
//! See the README for a quickstart and `DESIGN.md` for the system inventory.

pub use mtsim_apps as apps;
pub use mtsim_asm as asm;
pub use mtsim_check as check;
pub use mtsim_core as core;
pub use mtsim_isa as isa;
pub use mtsim_lang as lang;
pub use mtsim_mem as mem;
pub use mtsim_obs as obs;
pub use mtsim_opt as opt;
pub use mtsim_rt as rt;
pub use mtsim_sweep as sweep;
pub use mtsim_trace as trace;
